// Package server is the synthesis-as-a-service layer: a long-lived HTTP
// daemon that exposes the synthesis engine (internal/core), the
// exploration harness (internal/explore) and the benchmark suite
// (internal/bench) over JSON endpoints, turning the engine's per-run
// savings into cross-request wins.
//
// Endpoints:
//
//	POST /v1/synthesize   synthesize one design (body: synthesizeRequest)
//	POST /v1/portfolio    anytime portfolio synthesis (body: portfolioRequest)
//	POST /v1/sweep        area-versus-power sweep at fixed T
//	POST /v1/surface      (deadline x power) grid exploration
//	POST /v1/pareto       multi-objective (area, latency, peak, lifetime) front
//	POST /v1/batch        a list of the above, fanned out, index-ordered results
//	GET  /v1/benchmarks   the built-in benchmark CDFGs
//	GET  /healthz         liveness probe
//	GET  /metrics         Prometheus text-format metrics
//
// The same daemon also runs in two cluster roles (internal/cluster). With
// Config.Worker it additionally serves the cluster-internal endpoints —
// POST /cluster/point (evaluate one grid cell through the result cache)
// and GET /cluster/cache (read-only cache probe for peer fill) — and,
// given Config.Peers, consults the cache peer owning a key before
// computing a miss. With Config.Pool it becomes a coordinator: /v1 grids
// are sharded across the registered workers by the content address of
// each cell (consistent hashing keeps every worker's cache hot for its
// shard), with work-stealing and retry-on-failure, and POST
// /cluster/register accepts worker registrations. Either way the response
// bytes are identical to a single-process run: grid cells route through
// the same cache keys and the same assembly code.
//
// Three mechanisms make the daemon safe under heavy identical-query
// traffic, the access pattern of exploration workloads:
//
//   - A content-addressed result cache (internal/cache): responses are
//     keyed by a canonical hash of (CDFG, library, constraints, algorithm)
//     and served byte-identical on repeat, with LRU+TTL eviction.
//     Synthesis is deterministic, so a cached response is exactly the
//     bytes a fresh run would produce.
//   - Singleflight deduplication: concurrent identical requests run the
//     engine once; followers block on the in-flight computation and share
//     its result.
//   - Admission control: at most Workers synthesis computations run
//     concurrently, at most QueueDepth more wait; beyond that requests are
//     rejected immediately with 429. Every request carries a deadline
//     (RequestTimeout) enforced through context cancellation, and SIGTERM
//     drains in-flight requests before exit (http.Server.Shutdown).
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"pchls/internal/cache"
	"pchls/internal/cdfg"
	"pchls/internal/cluster"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/obs"
	"pchls/internal/verify"
)

// Config parameterizes the daemon.
type Config struct {
	// Workers bounds concurrent synthesis computations (<= 0: 4).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// slot beyond the ones running (<= 0: 4 * Workers).
	QueueDepth int
	// CacheEntries bounds the result cache (<= 0: 1024 entries).
	CacheEntries int
	// CacheTTL expires cached results (<= 0: no expiry).
	CacheTTL time.Duration
	// RequestTimeout is the per-request synthesis deadline (<= 0: 60s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (<= 0: 8 MiB).
	MaxBodyBytes int64
	// ExploreWorkers is the per-request worker count handed to the
	// exploration harness for sweep/surface grids (0 = GOMAXPROCS).
	// Grid cells still count against the server's admission slots as a
	// single computation; this knob only controls intra-request fan-out.
	ExploreWorkers int
	// Validate re-checks every freshly synthesized design with the
	// independent constraint validator (internal/verify) before the
	// response is cached or served. A validation failure is a 500 — the
	// engine produced an invalid design — and is never cached. Cached
	// (warm) responses are not re-validated: they are byte-identical to a
	// validated cold run. Off by default; it costs O(T x n + n^2) per
	// synthesis.
	Validate bool
	// Worker mounts the cluster-internal endpoints (POST /cluster/point,
	// GET /cluster/cache) so this daemon can serve as a fleet worker.
	Worker bool
	// Peers, when non-nil, is this worker's cache-peer ring: on a local
	// cache miss the flight leader asks the key's owning peer before
	// computing (peer fill).
	Peers *cluster.Peers
	// Pool, when non-nil, turns the daemon into a coordinator: /v1 grid
	// endpoints shard their cells across the pool's workers instead of
	// computing locally, and POST /cluster/register is mounted.
	Pool *cluster.Pool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// result is one cached response: everything needed to replay it
// byte-identically, plus the work counters of the run that produced it.
type result struct {
	status int        // HTTP status (200, or 422 for deterministic infeasibility)
	body   []byte     // exact response bytes
	stats  core.Stats // engine work of the producing run (zero for 422)
}

// synthFunc runs one synthesis; it is a struct field so tests can
// substitute a gated implementation.
type synthFunc func(ctx context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, cfg core.Config, singlePass bool) (*core.Design, error)

func defaultSynth(ctx context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, cfg core.Config, singlePass bool) (*core.Design, error) {
	if singlePass {
		return core.Synthesize(g, lib, cons, cfg)
	}
	return core.SynthesizeBestContext(ctx, g, lib, cons, cfg)
}

// Server is the synthesis daemon. Construct with New; the zero value is
// not usable.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	reg   *obs.Registry
	cache *cache.Cache[*result]
	synth synthFunc

	sem     chan struct{} // admission slots: at most cfg.Workers computations
	waiting atomic.Int64  // admitted requests waiting for a slot

	hs       *http.Server
	draining atomic.Bool

	// Engine work counters, accumulated from Design.Stats after each run.
	schedulerRuns   *obs.Counter
	incrementalRuns *obs.Counter
	windowHits      *obs.Counter
	windowMisses    *obs.Counter
	engineRuns      *obs.Counter
	rejected        *obs.Counter
	inflight        *obs.Gauge
	runnerInflight  *obs.Gauge
	validations     *obs.Counter
	validationFails *obs.Counter

	// Portfolio QoR metrics: incumbent adoptions across all /v1/portfolio
	// runs, and the distribution of the relative gap closed over the
	// single-pass baseline.
	portfolioImprovements *obs.Counter
	portfolioGap          *obs.Histogram

	// paretoPoints tracks the non-dominated front sizes /v1/pareto returns.
	paretoPoints *obs.Histogram
}

// New builds a Server with its routes and metrics registered.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		reg:   obs.NewRegistry(),
		synth: defaultSynth,
		sem:   make(chan struct{}, cfg.Workers),
	}
	var cacheOpts []cache.Option[*result]
	if cfg.Peers != nil {
		cacheOpts = append(cacheOpts, cache.WithPeer[*result](func(ctx context.Context, key string) (*result, bool) {
			cr, ok := cfg.Peers.Fetch(ctx, key)
			if !ok {
				return nil, false
			}
			return &result{status: cr.Status, body: cr.Body, stats: cr.Stats}, true
		}))
	}
	s.cache = cache.New[*result](cfg.CacheEntries, cfg.CacheTTL, cacheOpts...)

	s.engineRuns = s.reg.Counter("pchls_engine_synth_total", "synthesis computations executed (cache misses that ran the engine)")
	s.schedulerRuns = s.reg.Counter("pchls_engine_scheduler_runs_total", "full pasap/palap scheduler executions across all requests")
	s.incrementalRuns = s.reg.Counter("pchls_engine_incremental_runs_total", "pinned incremental scheduler executions across all requests")
	s.windowHits = s.reg.Counter("pchls_engine_window_cache_hits_total", "engine window-cache hits across all requests")
	s.windowMisses = s.reg.Counter("pchls_engine_window_cache_misses_total", "engine window-cache misses across all requests")
	s.rejected = s.reg.Counter("pchls_admission_rejected_total", "requests rejected by admission control (429)")
	s.validations = s.reg.Counter("pchls_validations_total", "designs re-checked by the independent constraint validator")
	s.validationFails = s.reg.Counter("pchls_validation_failures_total", "designs the independent validator rejected (served as 500, never cached)")
	s.portfolioImprovements = s.reg.Counter("pchls_portfolio_improvements_total", "incumbent adoptions (pass or splice) across portfolio runs")
	s.portfolioGap = s.reg.Histogram("pchls_portfolio_gap", "relative area improvement of portfolio runs over the single-pass baseline", obs.RatioBuckets)
	s.paretoPoints = s.reg.Histogram("pchls_pareto_points", "non-dominated front sizes returned by /v1/pareto", obs.CountBuckets)
	s.inflight = s.reg.Gauge("pchls_http_inflight", "requests currently being served")
	s.runnerInflight = s.reg.Gauge("pchls_runner_inflight", "exploration worker-pool items currently executing")
	s.reg.GaugeFunc("pchls_queue_waiting", "admitted requests waiting for a worker slot",
		func() float64 { return float64(s.waiting.Load()) })
	s.reg.GaugeFunc("pchls_cache_entries", "live result-cache entries",
		func() float64 { return float64(s.cache.Len()) })
	s.reg.CounterFunc("pchls_cache_hits_total", "result-cache hits",
		func() float64 { return float64(s.cache.Stats().Hits) })
	s.reg.CounterFunc("pchls_cache_misses_total", "result-cache misses",
		func() float64 { return float64(s.cache.Stats().Misses) })
	s.reg.CounterFunc("pchls_cache_coalesced_total", "requests deduplicated onto an in-flight identical computation",
		func() float64 { return float64(s.cache.Stats().Coalesced) })
	s.reg.CounterFunc("pchls_cache_evictions_total", "result-cache LRU evictions",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	s.reg.CounterFunc("pchls_cache_expirations_total", "result-cache TTL expirations",
		func() float64 { return float64(s.cache.Stats().Expirations) })
	s.reg.CounterFunc("pchls_cache_peer_hits_total", "result-cache misses served from a cluster peer's cache",
		func() float64 { return float64(s.cache.Stats().PeerHits) })
	s.reg.CounterFunc("pchls_cache_peer_misses_total", "peer probes that yielded nothing (computed locally)",
		func() float64 { return float64(s.cache.Stats().PeerMisses) })
	if pool := cfg.Pool; pool != nil {
		s.reg.GaugeFunc("pchls_cluster_workers", "workers registered with this coordinator",
			func() float64 { return float64(len(pool.Members())) })
		s.reg.CounterFunc("pchls_cluster_points_total", "grid points dispatched to workers successfully",
			func() float64 { return float64(pool.Stats().Points) })
		s.reg.CounterFunc("pchls_cluster_steals_total", "grid points stolen from another worker's queue",
			func() float64 { return float64(pool.Stats().Steals) })
		s.reg.CounterFunc("pchls_cluster_retries_total", "grid points re-dispatched after a failed attempt",
			func() float64 { return float64(pool.Stats().Retries) })
		s.reg.CounterFunc("pchls_cluster_failures_total", "failed point dispatch attempts",
			func() float64 { return float64(pool.Stats().Failures) })
	}

	s.mux.HandleFunc("POST /v1/synthesize", s.instrument("/v1/synthesize", s.handleSynthesize))
	s.mux.HandleFunc("POST /v1/portfolio", s.instrument("/v1/portfolio", s.handlePortfolio))
	s.mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("POST /v1/surface", s.instrument("/v1/surface", s.handleSurface))
	s.mux.HandleFunc("POST /v1/pareto", s.instrument("/v1/pareto", s.handlePareto))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("/v1/batch", s.handleBatch))
	s.mux.HandleFunc("GET /v1/benchmarks", s.instrument("/v1/benchmarks", s.handleBenchmarks))
	if cfg.Worker {
		s.mux.HandleFunc("POST /cluster/point", s.instrument("/cluster/point", s.handleClusterPoint))
		s.mux.HandleFunc("GET /cluster/cache", s.instrument("/cluster/cache", s.handleClusterCache))
	}
	if cfg.Pool != nil {
		s.mux.HandleFunc("POST /cluster/register", s.instrument("/cluster/register", s.handleClusterRegister))
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", s.reg.Handler())

	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the daemon's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown; it blocks like
// http.Server.Serve and returns http.ErrServerClosed after a graceful
// drain.
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// Shutdown gracefully drains the daemon: the listener closes immediately
// (new connections are refused), in-flight requests run to completion, and
// requests arriving on kept-alive connections are refused with 503.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.hs.Shutdown(ctx)
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with body limiting, drain refusal, and
// request count/latency metrics labeled by path and status code.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram("pchls_http_request_seconds", "request latency", nil, obs.Label{Key: "path", Value: path})
	endpointHist := s.reg.Histogram("pchls_request_seconds", "request latency by endpoint", nil, obs.Label{Key: "endpoint", Value: path})
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(rec, r)
		elapsed := time.Since(start).Seconds()
		hist.Observe(elapsed)
		endpointHist.Observe(elapsed)
		s.reg.Counter("pchls_http_requests_total", "requests served",
			obs.Label{Key: "path", Value: path},
			obs.Label{Key: "code", Value: strconv.Itoa(rec.status)}).Inc()
	}
}

// errOverloaded marks an admission rejection.
type overloadError struct{}

func (overloadError) Error() string { return "server overloaded: queue full" }

// acquire claims one of the Workers computation slots, waiting in the
// bounded queue. It fails fast with overloadError when the queue is full
// and with ctx.Err() when the request deadline fires first.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	if s.waiting.Add(1) > int64(s.cfg.Workers+s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		s.rejected.Inc()
		return nil, overloadError{}
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// validateDesign re-checks a freshly synthesized design with the
// independent validator when Config.Validate is set. A failure means the
// engine emitted a design violating the paper's invariants; it surfaces
// as a non-cacheable 500 so a buggy build can never poison the cache.
func (s *Server) validateDesign(d *core.Design) error {
	if !s.cfg.Validate {
		return nil
	}
	s.validations.Inc()
	if err := verify.Check(core.VerifyInput(d)); err != nil {
		s.validationFails.Inc()
		return fmt.Errorf("engine produced an invalid design: %w", err)
	}
	return nil
}

// noteStats folds one run's engine work counters into the global metrics.
func (s *Server) noteStats(st core.Stats) {
	s.engineRuns.Inc()
	s.schedulerRuns.Add(st.SchedulerRuns)
	s.incrementalRuns.Add(st.IncrementalRuns)
	s.windowHits.Add(st.WindowCacheHits)
	s.windowMisses.Add(st.WindowCacheMisses)
}
