package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
)

// The request payloads of the /v1 endpoints. Graph and Library decode
// through their validating JSON unmarshalers (internal/cdfg,
// internal/library), so a request that decodes successfully already
// carries a structurally valid CDFG and module library; the remaining
// checks here are cross-field (exactly one graph source, positive
// deadline, sane grids).

// synthesizeRequest is the body of POST /v1/synthesize.
type synthesizeRequest struct {
	// Benchmark names a built-in CDFG; mutually exclusive with Graph.
	Benchmark string `json:"benchmark,omitempty"`
	// Graph is an inline CDFG in the {"name","nodes","edges"} schema.
	Graph *cdfg.Graph `json:"graph,omitempty"`
	// Library is an optional module list; the paper's Table 1 when absent.
	Library *library.Library `json:"library,omitempty"`
	// Deadline is the latency constraint T in cycles (> 0, required).
	Deadline int `json:"deadline"`
	// PowerMax is the per-cycle power constraint P< (0 = unconstrained).
	PowerMax float64 `json:"power_max,omitempty"`
	// SinglePass selects the paper's one-shot algorithm instead of the
	// portfolio SynthesizeBest.
	SinglePass bool `json:"single_pass,omitempty"`
}

// portfolioRequest is the body of POST /v1/portfolio: anytime portfolio
// synthesis with effort knobs.
type portfolioRequest struct {
	Benchmark string           `json:"benchmark,omitempty"`
	Graph     *cdfg.Graph      `json:"graph,omitempty"`
	Library   *library.Library `json:"library,omitempty"`
	Deadline  int              `json:"deadline"`
	PowerMax  float64          `json:"power_max,omitempty"`
	// K is the number of perturbed passes per round (0 = server default 8,
	// capped at maxPortfolioPasses).
	K int `json:"k,omitempty"`
	// Budget is the maximum improvement rounds (0 = default 2, capped at
	// maxPortfolioRounds).
	Budget int `json:"budget,omitempty"`
	// Seed fixes the perturbation streams; identical requests produce
	// byte-identical responses for a fixed seed.
	Seed int64 `json:"seed,omitempty"`
}

// Portfolio effort caps: one request may not fan out arbitrarily wide or
// loop arbitrarily long.
const (
	maxPortfolioPasses = 16
	maxPortfolioRounds = 8
)

// sweepRequest is the body of POST /v1/sweep: an area-versus-power sweep
// at a fixed deadline.
type sweepRequest struct {
	Benchmark  string           `json:"benchmark,omitempty"`
	Graph      *cdfg.Graph      `json:"graph,omitempty"`
	Library    *library.Library `json:"library,omitempty"`
	Deadline   int              `json:"deadline"`
	PowerMin   float64          `json:"power_min"`
	PowerMax   float64          `json:"power_max"`
	Step       float64          `json:"step"`
	SinglePass bool             `json:"single_pass,omitempty"`
}

// surfaceRequest is the body of POST /v1/surface: a (deadline x power)
// grid exploration.
type surfaceRequest struct {
	Benchmark  string           `json:"benchmark,omitempty"`
	Graph      *cdfg.Graph      `json:"graph,omitempty"`
	Library    *library.Library `json:"library,omitempty"`
	Deadlines  []int            `json:"deadlines"`
	Powers     []float64        `json:"powers"`
	SinglePass bool             `json:"single_pass,omitempty"`
}

// batteryRequest selects and sizes the lifetime model of a pareto
// request.
type batteryRequest struct {
	// Model is "kibam" (default) or "peukert".
	Model string `json:"model,omitempty"`
	// Capacity overrides the default sizing — 50x the energy of one
	// unconstrained ASAP schedule period. 0 keeps the default.
	Capacity float64 `json:"capacity,omitempty"`
}

// paretoRequest is the body of POST /v1/pareto: a (deadline x power)
// grid exploration reduced to the non-dominated set over (area, latency,
// peak power, battery lifetime).
type paretoRequest struct {
	Benchmark  string           `json:"benchmark,omitempty"`
	Graph      *cdfg.Graph      `json:"graph,omitempty"`
	Library    *library.Library `json:"library,omitempty"`
	Deadlines  []int            `json:"deadlines"`
	Powers     []float64        `json:"powers"`
	SinglePass bool             `json:"single_pass,omitempty"`
	Battery    *batteryRequest  `json:"battery,omitempty"`
}

// requestError is a client-side fault mapped to 400 Bad Request.
type requestError struct {
	msg string
	err error
}

func (e *requestError) Error() string {
	if e.err != nil {
		return e.msg + ": " + e.err.Error()
	}
	return e.msg
}

func (e *requestError) Unwrap() error { return e.err }

func badRequest(msg string, err error) error { return &requestError{msg: msg, err: err} }

// isRequestError reports whether err is a client fault.
func isRequestError(err error) bool {
	var re *requestError
	return errors.As(err, &re)
}

// decodeJSON strictly decodes one JSON document from r into v: unknown
// fields, trailing garbage and oversized bodies are all client errors.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid request body", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return badRequest("invalid request body", errors.New("trailing data after JSON document"))
	}
	return nil
}

// resolveGraph materializes the request's CDFG from either the benchmark
// name or the inline graph (exactly one must be present).
func resolveGraph(benchmark string, graph *cdfg.Graph) (*cdfg.Graph, error) {
	switch {
	case benchmark == "" && graph == nil:
		return nil, badRequest(`one of "benchmark" or "graph" is required`, nil)
	case benchmark != "" && graph != nil:
		return nil, badRequest(`"benchmark" and "graph" are mutually exclusive`, nil)
	case benchmark != "":
		g, err := bench.ByName(benchmark)
		if err != nil {
			return nil, badRequest("unknown benchmark", err)
		}
		return g, nil
	default:
		return graph, nil
	}
}

// resolveLibrary returns the request library or the Table 1 default.
func resolveLibrary(lib *library.Library) *library.Library {
	if lib == nil {
		return library.Table1()
	}
	return lib
}

func checkPower(name string, p float64) error {
	if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
		return badRequest(fmt.Sprintf("%q must be a finite non-negative number", name), nil)
	}
	return nil
}

// validateSynthesize cross-checks a decoded synthesize request and
// resolves its graph and library.
func (req *synthesizeRequest) validate() (*cdfg.Graph, *library.Library, core.Constraints, error) {
	g, err := resolveGraph(req.Benchmark, req.Graph)
	if err != nil {
		return nil, nil, core.Constraints{}, err
	}
	if req.Deadline <= 0 {
		return nil, nil, core.Constraints{}, badRequest(`"deadline" must be a positive cycle count`, nil)
	}
	if err := checkPower("power_max", req.PowerMax); err != nil {
		return nil, nil, core.Constraints{}, err
	}
	return g, resolveLibrary(req.Library), core.Constraints{Deadline: req.Deadline, PowerMax: req.PowerMax}, nil
}

// validate cross-checks a decoded portfolio request and resolves its
// graph and library.
func (req *portfolioRequest) validate() (*cdfg.Graph, *library.Library, core.Constraints, error) {
	g, err := resolveGraph(req.Benchmark, req.Graph)
	if err != nil {
		return nil, nil, core.Constraints{}, err
	}
	if req.Deadline <= 0 {
		return nil, nil, core.Constraints{}, badRequest(`"deadline" must be a positive cycle count`, nil)
	}
	if err := checkPower("power_max", req.PowerMax); err != nil {
		return nil, nil, core.Constraints{}, err
	}
	if req.K < 0 || req.K > maxPortfolioPasses {
		return nil, nil, core.Constraints{}, badRequest(fmt.Sprintf(`"k" must be in [0, %d]`, maxPortfolioPasses), nil)
	}
	if req.Budget < 0 || req.Budget > maxPortfolioRounds {
		return nil, nil, core.Constraints{}, badRequest(fmt.Sprintf(`"budget" must be in [0, %d]`, maxPortfolioRounds), nil)
	}
	return g, resolveLibrary(req.Library), core.Constraints{Deadline: req.Deadline, PowerMax: req.PowerMax}, nil
}

func (req *sweepRequest) validate() (*cdfg.Graph, *library.Library, error) {
	g, err := resolveGraph(req.Benchmark, req.Graph)
	if err != nil {
		return nil, nil, err
	}
	if req.Deadline <= 0 {
		return nil, nil, badRequest(`"deadline" must be a positive cycle count`, nil)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"power_min", req.PowerMin}, {"power_max", req.PowerMax}, {"step", req.Step}} {
		if err := checkPower(f.name, f.v); err != nil {
			return nil, nil, err
		}
	}
	if req.Step <= 0 || req.PowerMax < req.PowerMin {
		return nil, nil, badRequest("sweep grid must satisfy step > 0 and power_min <= power_max", nil)
	}
	if n := (req.PowerMax - req.PowerMin) / req.Step; n > maxGridPoints {
		return nil, nil, badRequest(fmt.Sprintf("sweep grid has more than %d points", maxGridPoints), nil)
	}
	return g, resolveLibrary(req.Library), nil
}

func (req *surfaceRequest) validate() (*cdfg.Graph, *library.Library, error) {
	g, err := resolveGraph(req.Benchmark, req.Graph)
	if err != nil {
		return nil, nil, err
	}
	if len(req.Deadlines) == 0 || len(req.Powers) == 0 {
		return nil, nil, badRequest(`"deadlines" and "powers" must be non-empty`, nil)
	}
	if len(req.Deadlines)*len(req.Powers) > maxGridPoints {
		return nil, nil, badRequest(fmt.Sprintf("surface grid has more than %d cells", maxGridPoints), nil)
	}
	for _, d := range req.Deadlines {
		if d <= 0 {
			return nil, nil, badRequest(`every "deadlines" entry must be positive`, nil)
		}
	}
	for _, p := range req.Powers {
		if err := checkPower("powers", p); err != nil {
			return nil, nil, err
		}
	}
	return g, resolveLibrary(req.Library), nil
}

// batteryModel returns the request's normalized battery model name and
// explicit capacity (0 = derive the default).
func (req *paretoRequest) batteryModel() (model string, capacity float64) {
	model = "kibam"
	if req.Battery != nil {
		if req.Battery.Model != "" {
			model = req.Battery.Model
		}
		capacity = req.Battery.Capacity
	}
	return model, capacity
}

func (req *paretoRequest) validate() (*cdfg.Graph, *library.Library, error) {
	g, err := resolveGraph(req.Benchmark, req.Graph)
	if err != nil {
		return nil, nil, err
	}
	if len(req.Deadlines) == 0 || len(req.Powers) == 0 {
		return nil, nil, badRequest(`"deadlines" and "powers" must be non-empty`, nil)
	}
	if len(req.Deadlines)*len(req.Powers) > maxGridPoints {
		return nil, nil, badRequest(fmt.Sprintf("pareto grid has more than %d cells", maxGridPoints), nil)
	}
	for _, d := range req.Deadlines {
		if d <= 0 {
			return nil, nil, badRequest(`every "deadlines" entry must be positive`, nil)
		}
	}
	for _, p := range req.Powers {
		if err := checkPower("powers", p); err != nil {
			return nil, nil, err
		}
	}
	if req.Battery != nil {
		switch req.Battery.Model {
		case "", "kibam", "peukert":
		default:
			return nil, nil, badRequest(`"battery.model" must be "kibam" or "peukert"`, nil)
		}
		if err := checkPower("battery.capacity", req.Battery.Capacity); err != nil {
			return nil, nil, err
		}
	}
	return g, resolveLibrary(req.Library), nil
}

// maxGridPoints bounds sweep, surface and pareto request grids: a single
// request may not fan out into more synthesis runs than this.
const maxGridPoints = 4096
