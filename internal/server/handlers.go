package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"pchls/internal/bench"
	"pchls/internal/cache"
	"pchls/internal/cdfg"
	"pchls/internal/cluster"
	"pchls/internal/core"
	"pchls/internal/explore"
	"pchls/internal/portfolio"
	"pchls/internal/power"
)

// Response headers carrying per-request observability: the cache outcome
// and the engine work behind the bytes served. They ride outside the body
// so warm responses stay byte-identical to the cold run that filled the
// cache.
const (
	headerCache           = "X-Pchls-Cache"          // hit | miss | coalesced | peer
	headerSchedulerRuns   = "X-Pchls-Scheduler-Runs" // full scheduler runs this request performed
	headerIncrementalRuns = "X-Pchls-Incremental-Runs"
)

type errorJSON struct {
	Error string `json:"error"`
}

// errorBody renders the error document. Batch items and direct endpoint
// responses share it, so an error is byte-identical either way.
func errorBody(msg string) []byte {
	b, err := json.Marshal(errorJSON{Error: msg})
	if err != nil {
		return []byte(`{"error":"internal error"}` + "\n")
	}
	return append(b, '\n')
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(errorBody(msg))
}

// requestErrorStatus maps a decode/validation failure to a status + message.
func requestErrorStatus(err error) (int, string) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge, err.Error()
	}
	return http.StatusBadRequest, err.Error()
}

// writeRequestError maps a decode/validation failure to a client response.
func writeRequestError(w http.ResponseWriter, err error) {
	status, msg := requestErrorStatus(err)
	writeError(w, status, msg)
}

// proxyError carries a worker's non-cacheable response verbatim through
// the coordinator's proxy path (portfolio), preserving its status.
type proxyError struct {
	status int
	body   []byte
}

func (e *proxyError) Error() string {
	return fmt.Sprintf("worker returned %d", e.status)
}

// computeErrorStatus maps a non-cacheable computation failure to a
// status + response body, shared by direct responses and batch items.
func computeErrorStatus(err error) (status int, body []byte, retryAfter bool) {
	var pe *proxyError
	switch {
	case errors.Is(err, overloadError{}):
		return http.StatusTooManyRequests, errorBody(err.Error()), true
	case errors.Is(err, cluster.ErrNoWorkers):
		return http.StatusServiceUnavailable, errorBody(err.Error()), false
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, errorBody("request deadline exceeded before synthesis completed"), false
	case errors.As(err, &pe):
		return pe.status, pe.body, pe.status == http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError, errorBody(err.Error()), false
	}
}

// writeComputeError maps a non-cacheable computation failure.
func writeComputeError(w http.ResponseWriter, err error) {
	status, body, retryAfter := computeErrorStatus(err)
	if retryAfter {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeResult replays a (possibly cached) result. Warm hits — local or
// peer-filled — report zero engine work: this request performed none.
func writeResult(w http.ResponseWriter, res *result, outcome cache.Outcome) {
	sched, incr := int64(0), int64(0)
	if outcome == cache.Miss || outcome == cache.Coalesced {
		sched, incr = res.stats.SchedulerRuns, res.stats.IncrementalRuns
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(headerCache, outcome.String())
	w.Header().Set(headerSchedulerRuns, strconv.FormatInt(sched, 10))
	w.Header().Set(headerIncrementalRuns, strconv.FormatInt(incr, 10))
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// infeasibleResult renders a deterministic synthesis failure (infeasible
// constraints, uncovered operations) as a cacheable 422.
func infeasibleResult(err error) *result {
	body, merr := json.MarshalIndent(errorJSON{Error: err.Error()}, "", "  ")
	if merr != nil {
		body = []byte(`{"error":"infeasible"}`)
	}
	return &result{status: http.StatusUnprocessableEntity, body: body}
}

// compute wraps the admission-control + synthesis body shared by the
// three POST endpoints: acquire a worker slot, run fn, classify errors.
// Deterministic failures come back as cacheable results; overload and
// deadline failures come back as errors (not cached).
func (s *Server) compute(ctx context.Context, fn func(ctx context.Context) (*result, error)) (*result, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := fn(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, core.ErrInfeasible) || errors.Is(err, core.ErrUncovered) {
			return infeasibleResult(err), nil
		}
		return nil, err
	}
	return res, nil
}

// execSynthesize is the synthesize endpoint's core, shared by the HTTP
// handler, batch items and the worker point endpoint: derive the content
// address, consult the cache (and, on a worker, the peer ring), and on a
// cold miss either run the engine locally or — on a coordinator —
// dispatch the point to the worker owning its key.
func (s *Server) execSynthesize(ctx context.Context, req *synthesizeRequest) (*result, cache.Outcome, error) {
	g, lib, cons, err := req.validate()
	if err != nil {
		return nil, 0, err
	}
	key := cache.SynthesizeKey(g, lib, cons, req.SinglePass)
	return s.cache.Do(ctx, key, func(ctx context.Context) (*result, error) {
		if pool := s.cfg.Pool; pool != nil {
			return s.compute(ctx, func(ctx context.Context) (*result, error) {
				preq, err := req.pointRequest(cons)
				if err != nil {
					return nil, err
				}
				resp, err := pool.Point(ctx, key, preq)
				if err != nil {
					return nil, err
				}
				return &result{status: resp.Status, body: resp.Body, stats: resp.Stats}, nil
			})
		}
		return s.compute(ctx, func(ctx context.Context) (*result, error) {
			d, err := s.synth(ctx, g, lib, cons, core.Config{Workers: 1}, req.SinglePass)
			if err != nil {
				return nil, err
			}
			if err := s.validateDesign(d); err != nil {
				return nil, err
			}
			s.noteStats(d.Stats)
			body, err := d.JSON()
			if err != nil {
				return nil, err
			}
			return &result{status: http.StatusOK, body: body, stats: d.Stats}, nil
		})
	})
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	var req synthesizeRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	res, outcome, err := s.execSynthesize(ctx, &req)
	if err != nil {
		if isRequestError(err) {
			writeRequestError(w, err)
			return
		}
		writeComputeError(w, err)
		return
	}
	writeResult(w, res, outcome)
}

// portfolioStatsJSON summarizes the portfolio search alongside the
// winning design (deterministic for a given request, so safe to cache).
type portfolioStatsJSON struct {
	BaselineArea       float64 `json:"baseline_area"`
	BaselinePeak       float64 `json:"baseline_peak"`
	Area               float64 `json:"area"`
	PeakPower          float64 `json:"peak_power"`
	Improved           bool    `json:"improved"`
	Gap                float64 `json:"gap"`
	Rounds             int     `json:"rounds"`
	Passes             int     `json:"passes"`
	Aborted            int     `json:"aborted"`
	Infeasible         int     `json:"infeasible"`
	PassImprovements   int     `json:"pass_improvements"`
	Splices            int     `json:"splices"`
	SpliceImprovements int     `json:"splice_improvements"`
}

type portfolioJSON struct {
	Design    json.RawMessage    `json:"design"`
	Portfolio portfolioStatsJSON `json:"portfolio"`
}

// execPortfolio is the portfolio endpoint's core. A coordinator cannot
// decompose the portfolio search into grid points, so it proxies the
// whole request to the worker owning the portfolio's content address —
// the same worker every time, so repeats hit that worker's cache.
func (s *Server) execPortfolio(ctx context.Context, req *portfolioRequest) (*result, cache.Outcome, error) {
	g, lib, cons, err := req.validate()
	if err != nil {
		return nil, 0, err
	}
	key := cache.PortfolioKey(g, lib, cons, req.K, req.Budget, req.Seed)
	return s.cache.Do(ctx, key, func(ctx context.Context) (*result, error) {
		if pool := s.cfg.Pool; pool != nil {
			return s.compute(ctx, func(ctx context.Context) (*result, error) {
				body, err := json.Marshal(req)
				if err != nil {
					return nil, err
				}
				status, respBody, err := pool.Proxy(ctx, key, "/v1/portfolio", body)
				if err != nil {
					return nil, err
				}
				if status != http.StatusOK && status != http.StatusUnprocessableEntity {
					// Transient worker-side failure (overload, drain):
					// surface it verbatim, never cache it.
					return nil, &proxyError{status: status, body: respBody}
				}
				return &result{status: status, body: respBody}, nil
			})
		}
		return s.compute(ctx, func(ctx context.Context) (*result, error) {
			pres, err := portfolio.SynthesizeContext(ctx, g, lib, cons, portfolio.Config{
				K:        req.K,
				Budget:   req.Budget,
				Seed:     req.Seed,
				Workers:  s.cfg.ExploreWorkers,
				InFlight: s.runnerInflight,
				Core:     core.Config{Workers: 1},
			})
			if err != nil {
				return nil, err
			}
			if err := s.validateDesign(pres.Design); err != nil {
				return nil, err
			}
			s.noteStats(pres.Design.Stats)
			s.portfolioImprovements.Add(int64(pres.PassImprovements + pres.SpliceImprovements))
			s.portfolioGap.Observe(pres.Gap())
			design, err := pres.Design.JSON()
			if err != nil {
				return nil, err
			}
			body, err := json.MarshalIndent(portfolioJSON{
				Design: design,
				Portfolio: portfolioStatsJSON{
					BaselineArea:       pres.BaselineArea,
					BaselinePeak:       pres.BaselinePeak,
					Area:               pres.Design.Area(),
					PeakPower:          pres.Design.Schedule.PeakPower(),
					Improved:           pres.Improved,
					Gap:                pres.Gap(),
					Rounds:             pres.Rounds,
					Passes:             pres.Passes,
					Aborted:            pres.Aborted,
					Infeasible:         pres.Infeasible,
					PassImprovements:   pres.PassImprovements,
					Splices:            pres.Splices,
					SpliceImprovements: pres.SpliceImprovements,
				},
			}, "", "  ")
			if err != nil {
				return nil, err
			}
			return &result{status: http.StatusOK, body: body, stats: pres.Design.Stats}, nil
		})
	})
}

func (s *Server) handlePortfolio(w http.ResponseWriter, r *http.Request) {
	var req portfolioRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	res, outcome, err := s.execPortfolio(ctx, &req)
	if err != nil {
		if isRequestError(err) {
			writeRequestError(w, err)
			return
		}
		writeComputeError(w, err)
		return
	}
	writeResult(w, res, outcome)
}

// statsJSON is the work-counter schema embedded in sweep and surface
// responses (deterministic for a given request, so safe to cache).
type statsJSON struct {
	SchedulerRuns     int64 `json:"scheduler_runs"`
	IncrementalRuns   int64 `json:"incremental_runs"`
	WindowCacheHits   int64 `json:"window_cache_hits"`
	WindowCacheMisses int64 `json:"window_cache_misses"`
}

func toStatsJSON(st core.Stats) statsJSON {
	return statsJSON{
		SchedulerRuns:     st.SchedulerRuns,
		IncrementalRuns:   st.IncrementalRuns,
		WindowCacheHits:   st.WindowCacheHits,
		WindowCacheMisses: st.WindowCacheMisses,
	}
}

type curvePointJSON struct {
	Power     float64 `json:"power"`
	Feasible  bool    `json:"feasible"`
	Area      float64 `json:"area"`
	Peak      float64 `json:"peak"`
	FUs       int     `json:"fus"`
	Registers int     `json:"registers"`
	Locked    bool    `json:"locked"`
}

type curveJSON struct {
	Benchmark  string           `json:"benchmark"`
	Deadline   int              `json:"deadline"`
	Points     []curvePointJSON `json:"points"`
	TotalStats statsJSON        `json:"total_stats"`
}

// execSweep is the sweep endpoint's core. On a coordinator the grid
// cells are sharded across the worker fleet (explore's Eval hook); the
// subsumption assembly and JSON rendering are the same code either way,
// so the response bytes are identical.
func (s *Server) execSweep(ctx context.Context, req *sweepRequest) (*result, cache.Outcome, error) {
	g, lib, err := req.validate()
	if err != nil {
		return nil, 0, err
	}
	key := cache.SweepKey(g, lib, req.Deadline, req.PowerMin, req.PowerMax, req.Step, req.SinglePass)
	return s.cache.Do(ctx, key, func(ctx context.Context) (*result, error) {
		return s.compute(ctx, func(ctx context.Context) (*result, error) {
			cfg := explore.SweepConfig{
				PowerMin:   req.PowerMin,
				PowerMax:   req.PowerMax,
				Step:       req.Step,
				SinglePass: req.SinglePass,
				Workers:    s.cfg.ExploreWorkers,
				InFlight:   s.runnerInflight,
				Config:     core.Config{Workers: 1},
			}
			if s.cfg.Pool != nil {
				eval, err := s.clusterEval(req.Benchmark, req.Graph, req.Library, g, lib, req.SinglePass)
				if err != nil {
					return nil, err
				}
				cfg.Eval = eval
			}
			curve, err := explore.SweepContext(ctx, g, lib, req.Deadline, cfg)
			if err != nil {
				return nil, err
			}
			total := curve.TotalStats()
			if s.cfg.Pool == nil {
				s.noteStats(total)
			}
			out := curveJSON{
				Benchmark:  curve.Benchmark,
				Deadline:   curve.Deadline,
				Points:     make([]curvePointJSON, 0, len(curve.Points)),
				TotalStats: toStatsJSON(total),
			}
			for _, p := range curve.Points {
				out.Points = append(out.Points, curvePointJSON{
					Power: p.Power, Feasible: p.Feasible, Area: p.Area, Peak: p.Peak,
					FUs: p.FUs, Registers: p.Registers, Locked: p.Locked,
				})
			}
			body, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				return nil, err
			}
			return &result{status: http.StatusOK, body: body, stats: total}, nil
		})
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	res, outcome, err := s.execSweep(ctx, &req)
	if err != nil {
		if isRequestError(err) {
			writeRequestError(w, err)
			return
		}
		writeComputeError(w, err)
		return
	}
	writeResult(w, res, outcome)
}

type surfacePointJSON struct {
	Deadline int     `json:"deadline"`
	Power    float64 `json:"power"`
	Feasible bool    `json:"feasible"`
	Area     float64 `json:"area"`
}

type surfaceJSON struct {
	Benchmark  string             `json:"benchmark"`
	Points     []surfacePointJSON `json:"points"`
	TotalStats statsJSON          `json:"total_stats"`
}

// execSurface is the surface endpoint's core; see execSweep for the
// coordinator sharding path.
func (s *Server) execSurface(ctx context.Context, req *surfaceRequest) (*result, cache.Outcome, error) {
	g, lib, err := req.validate()
	if err != nil {
		return nil, 0, err
	}
	key := cache.SurfaceKey(g, lib, req.Deadlines, req.Powers, req.SinglePass)
	return s.cache.Do(ctx, key, func(ctx context.Context) (*result, error) {
		return s.compute(ctx, func(ctx context.Context) (*result, error) {
			cfg := explore.SurfaceConfig{
				Deadlines:  req.Deadlines,
				Powers:     req.Powers,
				SinglePass: req.SinglePass,
				Workers:    s.cfg.ExploreWorkers,
				InFlight:   s.runnerInflight,
				Config:     core.Config{Workers: 1},
			}
			if s.cfg.Pool != nil {
				eval, err := s.clusterEval(req.Benchmark, req.Graph, req.Library, g, lib, req.SinglePass)
				if err != nil {
					return nil, err
				}
				cfg.Eval = eval
			}
			surface, err := explore.ExploreSurfaceContext(ctx, g, lib, cfg)
			if err != nil {
				return nil, err
			}
			total := surface.TotalStats()
			if s.cfg.Pool == nil {
				s.noteStats(total)
			}
			out := surfaceJSON{
				Benchmark:  surface.Benchmark,
				Points:     make([]surfacePointJSON, 0, len(surface.Points)),
				TotalStats: toStatsJSON(total),
			}
			for _, p := range surface.Points {
				out.Points = append(out.Points, surfacePointJSON{
					Deadline: p.Deadline, Power: p.Power, Feasible: p.Feasible, Area: p.Area,
				})
			}
			body, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				return nil, err
			}
			return &result{status: http.StatusOK, body: body, stats: total}, nil
		})
	})
}

func (s *Server) handleSurface(w http.ResponseWriter, r *http.Request) {
	var req surfaceRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	res, outcome, err := s.execSurface(ctx, &req)
	if err != nil {
		if isRequestError(err) {
			writeRequestError(w, err)
			return
		}
		writeComputeError(w, err)
		return
	}
	writeResult(w, res, outcome)
}

type paretoPointJSON struct {
	Deadline int             `json:"deadline"`
	Power    float64         `json:"power"`
	Area     float64         `json:"area"`
	Latency  int             `json:"latency"`
	Peak     float64         `json:"peak_power"`
	Lifetime int             `json:"lifetime"`
	Design   json.RawMessage `json:"design"`
}

type paretoJSON struct {
	Benchmark string            `json:"benchmark"`
	Battery   string            `json:"battery"`
	Evaluated int               `json:"evaluated"`
	Feasible  int               `json:"feasible"`
	Points    []paretoPointJSON `json:"points"`
}

// paretoMaxPeriods bounds the battery simulation of /v1/pareto; it is
// part of the content address because the lifetime objective — and with
// it the front membership — depends on it.
const paretoMaxPeriods = 1 << 20

// execPareto is the pareto endpoint's core. Like the portfolio, the
// front cannot be decomposed into independently cacheable grid points
// (domination is a cross-cell property), so a coordinator proxies the
// whole request to the worker owning its content address.
func (s *Server) execPareto(ctx context.Context, req *paretoRequest) (*result, cache.Outcome, error) {
	g, lib, err := req.validate()
	if err != nil {
		return nil, 0, err
	}
	model, capacity := req.batteryModel()
	key := cache.ParetoKey(g, lib, req.Deadlines, req.Powers, model, capacity, paretoMaxPeriods, req.SinglePass)
	return s.cache.Do(ctx, key, func(ctx context.Context) (*result, error) {
		if pool := s.cfg.Pool; pool != nil {
			return s.compute(ctx, func(ctx context.Context) (*result, error) {
				body, err := json.Marshal(req)
				if err != nil {
					return nil, err
				}
				status, respBody, err := pool.Proxy(ctx, key, "/v1/pareto", body)
				if err != nil {
					return nil, err
				}
				if status != http.StatusOK && status != http.StatusUnprocessableEntity {
					return nil, &proxyError{status: status, body: respBody}
				}
				return &result{status: status, body: respBody}, nil
			})
		}
		return s.compute(ctx, func(ctx context.Context) (*result, error) {
			var battery power.Battery
			var berr error
			if capacity > 0 {
				battery, berr = explore.NewBattery(model, capacity)
			} else {
				battery, berr = explore.DefaultBattery(g, lib, model)
			}
			if berr != nil {
				return nil, berr
			}
			front, err := explore.ExploreParetoContext(ctx, g, lib, explore.ParetoConfig{
				Deadlines:  req.Deadlines,
				Powers:     req.Powers,
				Battery:    battery,
				MaxPeriods: paretoMaxPeriods,
				SinglePass: req.SinglePass,
				Workers:    s.cfg.ExploreWorkers,
				InFlight:   s.runnerInflight,
				Config:     core.Config{Workers: 1},
			})
			if err != nil {
				return nil, err
			}
			var total core.Stats
			out := paretoJSON{
				Benchmark: front.Benchmark,
				Battery:   battery.Model(),
				Evaluated: front.Evaluated,
				Feasible:  front.Feasible,
				Points:    make([]paretoPointJSON, 0, len(front.Points)),
			}
			for _, p := range front.Points {
				if err := s.validateDesign(p.Design); err != nil {
					return nil, err
				}
				total = total.Add(p.Design.Stats)
				design, err := p.Design.JSON()
				if err != nil {
					return nil, err
				}
				out.Points = append(out.Points, paretoPointJSON{
					Deadline: p.Deadline, Power: p.PowerMax,
					Area: p.Area, Latency: p.Latency, Peak: p.Peak, Lifetime: p.Lifetime,
					Design: design,
				})
			}
			s.noteStats(total)
			s.paretoPoints.Observe(float64(len(front.Points)))
			body, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				return nil, err
			}
			return &result{status: http.StatusOK, body: body, stats: total}, nil
		})
	})
}

func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	var req paretoRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	res, outcome, err := s.execPareto(ctx, &req)
	if err != nil {
		if isRequestError(err) {
			writeRequestError(w, err)
			return
		}
		writeComputeError(w, err)
		return
	}
	writeResult(w, res, outcome)
}

// benchmarkNames is the served benchmark catalogue, in the facade's
// canonical order (pchls.BenchmarkNames).
var benchmarkNames = []string{"hal", "cosine", "elliptic", "fir16", "ar", "diffeq2", "fft8"}

type benchmarkJSON struct {
	Name  string         `json:"name"`
	Nodes int            `json:"nodes"`
	Edges int            `json:"edges"`
	Ops   map[string]int `json:"ops"`
	Graph *cdfg.Graph    `json:"graph"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	out := make([]benchmarkJSON, 0, len(benchmarkNames))
	for _, name := range benchmarkNames {
		g, err := bench.ByName(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("benchmark %q: %v", name, err))
			return
		}
		ops := make(map[string]int)
		for op, n := range g.OpCounts() {
			ops[op.String()] = n
		}
		out = append(out, benchmarkJSON{Name: name, Nodes: g.N(), Edges: g.E(), Ops: ops, Graph: g})
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}
