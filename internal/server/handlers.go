package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"pchls/internal/bench"
	"pchls/internal/cache"
	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/explore"
	"pchls/internal/portfolio"
)

// Response headers carrying per-request observability: the cache outcome
// and the engine work behind the bytes served. They ride outside the body
// so warm responses stay byte-identical to the cold run that filled the
// cache.
const (
	headerCache           = "X-Pchls-Cache"          // hit | miss | coalesced
	headerSchedulerRuns   = "X-Pchls-Scheduler-Runs" // full scheduler runs this request performed
	headerIncrementalRuns = "X-Pchls-Incremental-Runs"
)

type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorJSON{Error: msg})
}

// writeRequestError maps a decode/validation failure to a client response.
func writeRequestError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// writeComputeError maps a non-cacheable computation failure.
func writeComputeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, overloadError{}):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded before synthesis completed")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// writeResult replays a (possibly cached) result. Warm hits report zero
// engine work: the whole point of the cache is that they performed none.
func writeResult(w http.ResponseWriter, res *result, outcome cache.Outcome) {
	sched, incr := int64(0), int64(0)
	if outcome != cache.Hit {
		sched, incr = res.stats.SchedulerRuns, res.stats.IncrementalRuns
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(headerCache, outcome.String())
	w.Header().Set(headerSchedulerRuns, strconv.FormatInt(sched, 10))
	w.Header().Set(headerIncrementalRuns, strconv.FormatInt(incr, 10))
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// infeasibleResult renders a deterministic synthesis failure (infeasible
// constraints, uncovered operations) as a cacheable 422.
func infeasibleResult(err error) *result {
	body, merr := json.MarshalIndent(errorJSON{Error: err.Error()}, "", "  ")
	if merr != nil {
		body = []byte(`{"error":"infeasible"}`)
	}
	return &result{status: http.StatusUnprocessableEntity, body: body}
}

// compute wraps the admission-control + synthesis body shared by the
// three POST endpoints: acquire a worker slot, run fn, classify errors.
// Deterministic failures come back as cacheable results; overload and
// deadline failures come back as errors (not cached).
func (s *Server) compute(ctx context.Context, fn func(ctx context.Context) (*result, error)) (*result, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := fn(ctx)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, core.ErrInfeasible) || errors.Is(err, core.ErrUncovered) {
			return infeasibleResult(err), nil
		}
		return nil, err
	}
	return res, nil
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	var req synthesizeRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	g, lib, cons, err := req.validate()
	if err != nil {
		writeRequestError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	key := synthesizeKey(g, lib, cons, req.SinglePass)
	res, outcome, err := s.cache.Do(ctx, key, func(ctx context.Context) (*result, error) {
		return s.compute(ctx, func(ctx context.Context) (*result, error) {
			d, err := s.synth(ctx, g, lib, cons, core.Config{Workers: 1}, req.SinglePass)
			if err != nil {
				return nil, err
			}
			if err := s.validateDesign(d); err != nil {
				return nil, err
			}
			s.noteStats(d.Stats)
			body, err := d.JSON()
			if err != nil {
				return nil, err
			}
			return &result{status: http.StatusOK, body: body, stats: d.Stats}, nil
		})
	})
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeResult(w, res, outcome)
}

// portfolioStatsJSON summarizes the portfolio search alongside the
// winning design (deterministic for a given request, so safe to cache).
type portfolioStatsJSON struct {
	BaselineArea       float64 `json:"baseline_area"`
	BaselinePeak       float64 `json:"baseline_peak"`
	Area               float64 `json:"area"`
	PeakPower          float64 `json:"peak_power"`
	Improved           bool    `json:"improved"`
	Gap                float64 `json:"gap"`
	Rounds             int     `json:"rounds"`
	Passes             int     `json:"passes"`
	Aborted            int     `json:"aborted"`
	Infeasible         int     `json:"infeasible"`
	PassImprovements   int     `json:"pass_improvements"`
	Splices            int     `json:"splices"`
	SpliceImprovements int     `json:"splice_improvements"`
}

type portfolioJSON struct {
	Design    json.RawMessage    `json:"design"`
	Portfolio portfolioStatsJSON `json:"portfolio"`
}

func (s *Server) handlePortfolio(w http.ResponseWriter, r *http.Request) {
	var req portfolioRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	g, lib, cons, err := req.validate()
	if err != nil {
		writeRequestError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	key := portfolioKey(g, lib, cons, req.K, req.Budget, req.Seed)
	res, outcome, err := s.cache.Do(ctx, key, func(ctx context.Context) (*result, error) {
		return s.compute(ctx, func(ctx context.Context) (*result, error) {
			pres, err := portfolio.SynthesizeContext(ctx, g, lib, cons, portfolio.Config{
				K:        req.K,
				Budget:   req.Budget,
				Seed:     req.Seed,
				Workers:  s.cfg.ExploreWorkers,
				InFlight: s.runnerInflight,
				Core:     core.Config{Workers: 1},
			})
			if err != nil {
				return nil, err
			}
			if err := s.validateDesign(pres.Design); err != nil {
				return nil, err
			}
			s.noteStats(pres.Design.Stats)
			s.portfolioImprovements.Add(int64(pres.PassImprovements + pres.SpliceImprovements))
			s.portfolioGap.Observe(pres.Gap())
			design, err := pres.Design.JSON()
			if err != nil {
				return nil, err
			}
			body, err := json.MarshalIndent(portfolioJSON{
				Design: design,
				Portfolio: portfolioStatsJSON{
					BaselineArea:       pres.BaselineArea,
					BaselinePeak:       pres.BaselinePeak,
					Area:               pres.Design.Area(),
					PeakPower:          pres.Design.Schedule.PeakPower(),
					Improved:           pres.Improved,
					Gap:                pres.Gap(),
					Rounds:             pres.Rounds,
					Passes:             pres.Passes,
					Aborted:            pres.Aborted,
					Infeasible:         pres.Infeasible,
					PassImprovements:   pres.PassImprovements,
					Splices:            pres.Splices,
					SpliceImprovements: pres.SpliceImprovements,
				},
			}, "", "  ")
			if err != nil {
				return nil, err
			}
			return &result{status: http.StatusOK, body: body, stats: pres.Design.Stats}, nil
		})
	})
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeResult(w, res, outcome)
}

// statsJSON is the work-counter schema embedded in sweep and surface
// responses (deterministic for a given request, so safe to cache).
type statsJSON struct {
	SchedulerRuns     int64 `json:"scheduler_runs"`
	IncrementalRuns   int64 `json:"incremental_runs"`
	WindowCacheHits   int64 `json:"window_cache_hits"`
	WindowCacheMisses int64 `json:"window_cache_misses"`
}

func toStatsJSON(st core.Stats) statsJSON {
	return statsJSON{
		SchedulerRuns:     st.SchedulerRuns,
		IncrementalRuns:   st.IncrementalRuns,
		WindowCacheHits:   st.WindowCacheHits,
		WindowCacheMisses: st.WindowCacheMisses,
	}
}

type curvePointJSON struct {
	Power     float64 `json:"power"`
	Feasible  bool    `json:"feasible"`
	Area      float64 `json:"area"`
	Peak      float64 `json:"peak"`
	FUs       int     `json:"fus"`
	Registers int     `json:"registers"`
	Locked    bool    `json:"locked"`
}

type curveJSON struct {
	Benchmark  string           `json:"benchmark"`
	Deadline   int              `json:"deadline"`
	Points     []curvePointJSON `json:"points"`
	TotalStats statsJSON        `json:"total_stats"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	g, lib, err := req.validate()
	if err != nil {
		writeRequestError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	key := sweepKey(g, lib, req.Deadline, req.PowerMin, req.PowerMax, req.Step, req.SinglePass)
	res, outcome, err := s.cache.Do(ctx, key, func(ctx context.Context) (*result, error) {
		return s.compute(ctx, func(ctx context.Context) (*result, error) {
			curve, err := explore.SweepContext(ctx, g, lib, req.Deadline, explore.SweepConfig{
				PowerMin:   req.PowerMin,
				PowerMax:   req.PowerMax,
				Step:       req.Step,
				SinglePass: req.SinglePass,
				Workers:    s.cfg.ExploreWorkers,
				InFlight:   s.runnerInflight,
				Config:     core.Config{Workers: 1},
			})
			if err != nil {
				return nil, err
			}
			total := curve.TotalStats()
			s.noteStats(total)
			out := curveJSON{
				Benchmark:  curve.Benchmark,
				Deadline:   curve.Deadline,
				Points:     make([]curvePointJSON, 0, len(curve.Points)),
				TotalStats: toStatsJSON(total),
			}
			for _, p := range curve.Points {
				out.Points = append(out.Points, curvePointJSON{
					Power: p.Power, Feasible: p.Feasible, Area: p.Area, Peak: p.Peak,
					FUs: p.FUs, Registers: p.Registers, Locked: p.Locked,
				})
			}
			body, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				return nil, err
			}
			return &result{status: http.StatusOK, body: body, stats: total}, nil
		})
	})
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeResult(w, res, outcome)
}

type surfacePointJSON struct {
	Deadline int     `json:"deadline"`
	Power    float64 `json:"power"`
	Feasible bool    `json:"feasible"`
	Area     float64 `json:"area"`
}

type surfaceJSON struct {
	Benchmark  string             `json:"benchmark"`
	Points     []surfacePointJSON `json:"points"`
	TotalStats statsJSON          `json:"total_stats"`
}

func (s *Server) handleSurface(w http.ResponseWriter, r *http.Request) {
	var req surfaceRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	g, lib, err := req.validate()
	if err != nil {
		writeRequestError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	key := surfaceKey(g, lib, req.Deadlines, req.Powers, req.SinglePass)
	res, outcome, err := s.cache.Do(ctx, key, func(ctx context.Context) (*result, error) {
		return s.compute(ctx, func(ctx context.Context) (*result, error) {
			surface, err := explore.ExploreSurfaceContext(ctx, g, lib, explore.SurfaceConfig{
				Deadlines:  req.Deadlines,
				Powers:     req.Powers,
				SinglePass: req.SinglePass,
				Workers:    s.cfg.ExploreWorkers,
				InFlight:   s.runnerInflight,
				Config:     core.Config{Workers: 1},
			})
			if err != nil {
				return nil, err
			}
			total := surface.TotalStats()
			s.noteStats(total)
			out := surfaceJSON{
				Benchmark:  surface.Benchmark,
				Points:     make([]surfacePointJSON, 0, len(surface.Points)),
				TotalStats: toStatsJSON(total),
			}
			for _, p := range surface.Points {
				out.Points = append(out.Points, surfacePointJSON{
					Deadline: p.Deadline, Power: p.Power, Feasible: p.Feasible, Area: p.Area,
				})
			}
			body, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				return nil, err
			}
			return &result{status: http.StatusOK, body: body, stats: total}, nil
		})
	})
	if err != nil {
		writeComputeError(w, err)
		return
	}
	writeResult(w, res, outcome)
}

// benchmarkNames is the served benchmark catalogue, in the facade's
// canonical order (pchls.BenchmarkNames).
var benchmarkNames = []string{"hal", "cosine", "elliptic", "fir16", "ar", "diffeq2", "fft8"}

type benchmarkJSON struct {
	Name  string         `json:"name"`
	Nodes int            `json:"nodes"`
	Edges int            `json:"edges"`
	Ops   map[string]int `json:"ops"`
	Graph *cdfg.Graph    `json:"graph"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	out := make([]benchmarkJSON, 0, len(benchmarkNames))
	for _, name := range benchmarkNames {
		g, err := bench.ByName(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("benchmark %q: %v", name, err))
			return
		}
		ops := make(map[string]int)
		for op, n := range g.OpCounts() {
			ops[op.String()] = n
		}
		out = append(out, benchmarkJSON{Name: name, Nodes: g.N(), Edges: g.E(), Ops: ops, Graph: g})
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}
