package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"pchls/internal/core"
	"pchls/internal/portfolio"
)

// TestPortfolioEndpoint drives POST /v1/portfolio end to end: the
// response must carry the portfolio stats and a design byte-identical to
// a direct engine call with the same knobs, a repeat must be a warm
// byte-identical cache hit, and the improvement metrics must move.
func TestPortfolioEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Validate: true})

	body := `{"benchmark": "hal", "deadline": 11, "power_max": 29.28, "k": 8, "budget": 2, "seed": 1}`
	resp := postJSON(t, ts.URL+"/v1/portfolio", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get(headerCache); got != "miss" {
		t.Fatalf("cold request: %s = %q, want miss", headerCache, got)
	}
	cold := readBody(t, resp)

	var out struct {
		Design    json.RawMessage    `json:"design"`
		Portfolio portfolioStatsJSON `json:"portfolio"`
	}
	if err := json.Unmarshal(cold, &out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if !out.Portfolio.Improved || out.Portfolio.Gap <= 0 {
		t.Fatalf("hal T=11 P<=29.28 is a known-improvable point, got %+v", out.Portfolio)
	}
	if out.Portfolio.Area >= out.Portfolio.BaselineArea {
		t.Fatalf("area %.1f not below baseline %.1f", out.Portfolio.Area, out.Portfolio.BaselineArea)
	}

	// The served design must match a direct portfolio call bit for bit.
	g, lib, cons, err := (&portfolioRequest{Benchmark: "hal", Deadline: 11, PowerMax: 29.28, K: 8, Budget: 2, Seed: 1}).validate()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := portfolio.Synthesize(g, lib, cons, portfolio.Config{K: 8, Budget: 2, Seed: 1, Core: core.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := direct.Design.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var served, want bytes.Buffer
	if err := json.Compact(&served, out.Design); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&want, directJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served.Bytes(), want.Bytes()) {
		t.Fatal("served design differs from a direct portfolio synthesis with the same knobs")
	}

	// Warm repeat: byte-identical, served from cache.
	resp = postJSON(t, ts.URL+"/v1/portfolio", body)
	if got := resp.Header.Get(headerCache); got != "hit" {
		t.Fatalf("warm request: %s = %q, want hit", headerCache, got)
	}
	if warm := readBody(t, resp); !bytes.Equal(warm, cold) {
		t.Fatal("warm response bytes differ from the cold run")
	}

	// The improvement counter moved and the gap histogram saw one sample.
	resp, err2 := http.Get(ts.URL + "/metrics")
	if err2 != nil {
		t.Fatal(err2)
	}
	text := string(readBody(t, resp))
	if !strings.Contains(text, "pchls_portfolio_improvements_total") {
		t.Fatal("metrics page lacks pchls_portfolio_improvements_total")
	}
	if !strings.Contains(text, "pchls_portfolio_gap_count") {
		t.Fatal("metrics page lacks the pchls_portfolio_gap histogram")
	}
	if s.portfolioImprovements.Value() == 0 {
		t.Fatal("pchls_portfolio_improvements_total never incremented")
	}
}

// TestPortfolioEndpointErrors pins the request validation and the
// cacheable infeasibility verdict.
func TestPortfolioEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`{"benchmark": "hal", "deadline": 11, "k": 99}`, http.StatusBadRequest},
		{`{"benchmark": "hal", "deadline": 11, "budget": 99}`, http.StatusBadRequest},
		{`{"benchmark": "hal", "deadline": 0}`, http.StatusBadRequest},
		{`{"benchmark": "hal", "deadline": 11, "nope": 1}`, http.StatusBadRequest},
		{`{"benchmark": "ar", "deadline": 2, "power_max": 1}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/portfolio", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (body: %s)", c.body, resp.StatusCode, c.want, readBody(t, resp))
			continue
		}
		readBody(t, resp)
	}
}
