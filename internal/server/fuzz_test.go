package server

import (
	"bytes"
	"testing"

	"pchls/internal/cache"
)

// FuzzDecodeRequest throws arbitrary bytes at the /v1/synthesize request
// decoder. The invariant under fuzz: decoding either fails with a client
// error (mapped to 400) or yields a fully validated request whose inputs
// are usable by the engine and the key derivation — never a panic, never
// a half-validated graph.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"benchmark":"hal","deadline":17,"power_max":20}`,
		`{"benchmark":"diffeq2","deadline":30,"power_max":15,"single_pass":true}`,
		`{"graph":{"name":"g","nodes":[{"name":"a","op":"+"},{"name":"b","op":"*"}],"edges":[{"from":"a","to":"b"}]},"deadline":5}`,
		`{"benchmark":"hal","library":[{"name":"m","ops":["+","-"],"area":1,"delay":1,"power":2.5}],"deadline":9}`,
		`{"graph":{"name":"g","nodes":[{"name":"a","op":"+"}],"edges":[{"from":"a","to":"a"}]},"deadline":3}`,
		`{"benchmark":"hal","deadline":-1}`,
		`{"benchmark":"hal","graph":{"name":"g","nodes":[]},"deadline":1}`,
		`{"deadline":17}`,
		`{"benchmark":"hal","deadline":17,"power_max":1e309}`,
		`{"benchmark":"hal","deadline":17}{"trailing":true}`,
		`{"unknown_field":1}`,
		`[1,2,3]`,
		`"just a string"`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req synthesizeRequest
		if err := decodeJSON(bytes.NewReader(data), &req); err != nil {
			if !isRequestError(err) {
				t.Fatalf("decoder returned a non-client error for %q: %v", data, err)
			}
			return
		}
		g, lib, cons, err := req.validate()
		if err != nil {
			if !isRequestError(err) {
				t.Fatalf("validator returned a non-client error for %q: %v", data, err)
			}
			return
		}
		if g == nil || lib == nil {
			t.Fatalf("validated request has nil graph or library for %q", data)
		}
		if cons.Deadline <= 0 {
			t.Fatalf("validated request has non-positive deadline %d for %q", cons.Deadline, data)
		}
		// A validated request must survive graph traversal and key
		// derivation without panicking.
		if _, err := g.TopoOrder(); err != nil {
			t.Fatalf("validated graph fails TopoOrder for %q: %v", data, err)
		}
		if key := cache.SynthesizeKey(g, lib, cons, req.SinglePass); len(key) != 64 {
			t.Fatalf("cache key %q is not a sha256 hex digest", key)
		}
	})
}
