package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"

	"pchls/internal/cache"
	"pchls/internal/cdfg"
	"pchls/internal/cluster"
	"pchls/internal/core"
	"pchls/internal/explore"
	"pchls/internal/library"
)

// The cluster-internal endpoints and the coordinator's grid sharding.
//
// A worker's /cluster/point is POST /v1/synthesize with a different
// envelope: the same request schema, routed through the same cache key
// and the same engine invocation, but answered as a JSON-wrapped
// (status, body, stats) triple so the coordinator can reassemble grids
// byte-identically — including deterministic 422s — without parsing
// failure bodies out of HTTP errors. /cluster/cache exposes the result
// cache read-only for peer fill; it never computes, so peers cannot
// recurse into each other.

// gridForward is the request-source part of a grid's point requests:
// the benchmark name, or the inline graph/library serialized once and
// shared by every point of the grid.
type gridForward struct {
	benchmark string
	graph     json.RawMessage
	library   json.RawMessage
}

func forwardSource(benchmark string, graph *cdfg.Graph, lib *library.Library) (gridForward, error) {
	f := gridForward{benchmark: benchmark}
	if benchmark == "" && graph != nil {
		raw, err := json.Marshal(graph)
		if err != nil {
			return f, err
		}
		f.graph = raw
	}
	if lib != nil {
		raw, err := json.Marshal(lib)
		if err != nil {
			return f, err
		}
		f.library = raw
	}
	return f, nil
}

func (f gridForward) point(cons core.Constraints, singlePass bool) cluster.PointRequest {
	return cluster.PointRequest{
		Benchmark:  f.benchmark,
		Graph:      f.graph,
		Library:    f.library,
		Deadline:   cons.Deadline,
		PowerMax:   cons.PowerMax,
		SinglePass: singlePass,
	}
}

// pointRequest renders a synthesize request as one cluster point.
func (req *synthesizeRequest) pointRequest(cons core.Constraints) (cluster.PointRequest, error) {
	fwd, err := forwardSource(req.Benchmark, req.Graph, req.Library)
	if err != nil {
		return cluster.PointRequest{}, err
	}
	return fwd.point(cons, req.SinglePass), nil
}

// clusterEval builds the explore Eval hook that shards a grid across the
// worker pool: every cell keeps the content address it would have as an
// individual /v1/synthesize request, so the pool's consistent hashing
// sends it to the worker whose cache is hot for it, and the decoded
// results feed the same subsumption assembly the local path uses.
func (s *Server) clusterEval(benchmark string, graph *cdfg.Graph, reqLib *library.Library,
	g *cdfg.Graph, lib *library.Library, singlePass bool) (func(ctx context.Context, cons []core.Constraints) ([]explore.Point, error), error) {
	fwd, err := forwardSource(benchmark, graph, reqLib)
	if err != nil {
		return nil, err
	}
	pool := s.cfg.Pool
	return func(ctx context.Context, cons []core.Constraints) ([]explore.Point, error) {
		keys := make([]string, len(cons))
		reqs := make([]cluster.PointRequest, len(cons))
		for i, cn := range cons {
			keys[i] = cache.SynthesizeKey(g, lib, cn, singlePass)
			reqs[i] = fwd.point(cn, singlePass)
		}
		resps, err := pool.MapPoints(ctx, keys, reqs)
		if err != nil {
			return nil, err
		}
		pts := make([]explore.Point, len(resps))
		for i, resp := range resps {
			pr, err := resp.Result()
			if err != nil {
				return nil, err
			}
			pts[i] = explore.Point{
				Feasible:  pr.Feasible,
				Area:      pr.Area,
				Peak:      pr.Peak,
				FUs:       pr.FUs,
				Registers: pr.Registers,
				Locked:    pr.Locked,
				Stats:     pr.Stats,
			}
		}
		return pts, nil
	}, nil
}

// handleClusterPoint evaluates one grid cell on a worker: the same
// request schema, cache key and engine path as /v1/synthesize, answered
// as a PointResponse. Deterministic infeasibility rides inside the
// response (status 422) like any cached result; only transient faults
// (overload, deadline) use the HTTP status, which tells the coordinator
// to retry elsewhere.
func (s *Server) handleClusterPoint(w http.ResponseWriter, r *http.Request) {
	var req synthesizeRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	res, outcome, err := s.execSynthesize(ctx, &req)
	if err != nil {
		if isRequestError(err) {
			writeRequestError(w, err)
			return
		}
		writeComputeError(w, err)
		return
	}
	body, err := json.Marshal(cluster.PointResponse{
		CachedResult: cluster.CachedResult{Status: res.status, Body: res.body, Stats: res.stats},
		Cache:        outcome.String(),
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(headerCache, outcome.String())
	_, _ = w.Write(body)
}

// handleClusterCache is the read-only peer-fill probe: it answers from
// the local cache or says 404, and never computes anything.
func (s *Server) handleClusterCache(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, `query parameter "key" is required`)
		return
	}
	res, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "not cached")
		return
	}
	body, err := json.Marshal(cluster.CachedResult{Status: res.status, Body: res.body, Stats: res.stats})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// handleClusterRegister accepts a worker's registration and answers with
// the coordinator's current member list.
func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	u, err := url.Parse(req.Addr)
	if err != nil || u.Scheme == "" || u.Host == "" {
		writeError(w, http.StatusBadRequest, `"addr" must be an absolute URL like http://host:port`)
		return
	}
	s.cfg.Pool.Add(req.Addr)
	body, err := json.Marshal(cluster.RegisterResponse{Members: s.cfg.Pool.Members()})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}
