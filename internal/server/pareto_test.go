package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/core"
	"pchls/internal/explore"
	"pchls/internal/library"
)

const halParetoBody = `{"benchmark":"hal","deadlines":[9,12,17],"powers":[6,20,40]}`

// TestParetoEndpoint drives POST /v1/pareto end to end: the served front
// must carry designs byte-identical to a direct in-process exploration
// under the server's own defaults (kibam battery sized by DefaultBattery,
// the same period cap, serial synthesis), every design must re-validate,
// and a repeat must be a byte-identical cache hit.
func TestParetoEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{ExploreWorkers: 2})

	resp := postJSON(t, ts.URL+"/v1/pareto", halParetoBody)
	cold := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, cold)
	}
	var got paretoJSON
	if err := json.Unmarshal(cold, &got); err != nil {
		t.Fatalf("body: %v", err)
	}
	if got.Benchmark != "hal" || got.Battery != "kibam" {
		t.Errorf("benchmark %q battery %q, want hal/kibam", got.Benchmark, got.Battery)
	}
	if got.Evaluated != 9 || len(got.Points) == 0 {
		t.Errorf("evaluated %d with %d points, want 9 evaluated and a non-empty front", got.Evaluated, len(got.Points))
	}

	g, err := bench.ByName("hal")
	if err != nil {
		t.Fatal(err)
	}
	battery, err := explore.DefaultBattery(g, library.Table1(), "kibam")
	if err != nil {
		t.Fatal(err)
	}
	want, err := explore.ExplorePareto(g, library.Table1(), explore.ParetoConfig{
		Deadlines:  []int{9, 12, 17},
		Powers:     []float64{6, 20, 40},
		Battery:    battery,
		MaxPeriods: paretoMaxPeriods,
		Workers:    2,
		Config:     core.Config{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Points) != len(got.Points) {
		t.Fatalf("served %d points, direct exploration %d", len(got.Points), len(want.Points))
	}
	for i, p := range got.Points {
		w := want.Points[i]
		if p.Deadline != w.Deadline || p.Power != w.PowerMax || p.Area != w.Area ||
			p.Latency != w.Latency || p.Peak != w.Peak || p.Lifetime != w.Lifetime {
			t.Errorf("point %d objectives differ from direct exploration: %+v vs %+v", i, p, w)
		}
		direct, err := w.Design.JSON()
		if err != nil {
			t.Fatal(err)
		}
		// The envelope's MarshalIndent re-indents the embedded design
		// document, so equality holds on the compacted bytes.
		var servedC, directC bytes.Buffer
		if err := json.Compact(&servedC, p.Design); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&directC, direct); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(servedC.Bytes(), directC.Bytes()) {
			t.Errorf("point %d design is not byte-identical to the direct exploration", i)
		}
	}

	warm := postJSON(t, ts.URL+"/v1/pareto", halParetoBody)
	warmBytes := readBody(t, warm)
	if out := warm.Header.Get(headerCache); out != "hit" {
		t.Errorf("repeat %s = %q, want hit", headerCache, out)
	}
	if !bytes.Equal(cold, warmBytes) {
		t.Error("warm body differs from cold")
	}
}

// TestParetoBatteryParamsAddressTheCache: the battery model and capacity
// are part of the content address — changing either must miss the cache
// and may change the front's lifetime column.
func TestParetoBatteryParamsAddressTheCache(t *testing.T) {
	_, ts := newTestServer(t, Config{ExploreWorkers: 2})

	readBody(t, postJSON(t, ts.URL+"/v1/pareto", halParetoBody))
	peukert := postJSON(t, ts.URL+"/v1/pareto",
		`{"benchmark":"hal","deadlines":[9,12,17],"powers":[6,20,40],"battery":{"model":"peukert"}}`)
	body := readBody(t, peukert)
	if peukert.StatusCode != http.StatusOK {
		t.Fatalf("peukert status = %d, body %s", peukert.StatusCode, body)
	}
	if out := peukert.Header.Get(headerCache); out != "miss" {
		t.Errorf("different battery model %s = %q, want miss", headerCache, out)
	}
	var got paretoJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Battery != "peukert" {
		t.Errorf("battery = %q, want peukert", got.Battery)
	}

	capped := postJSON(t, ts.URL+"/v1/pareto",
		`{"benchmark":"hal","deadlines":[9,12,17],"powers":[6,20,40],"battery":{"model":"peukert","capacity":40}}`)
	cappedBody := readBody(t, capped)
	if capped.StatusCode != http.StatusOK {
		t.Fatalf("explicit capacity status = %d, body %s", capped.StatusCode, cappedBody)
	}
	if out := capped.Header.Get(headerCache); out != "miss" {
		t.Errorf("different capacity %s = %q, want miss", headerCache, out)
	}
}

// TestParetoBadRequests covers the endpoint's validation contract.
func TestParetoBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantSub string
	}{
		{"no grid", `{"benchmark":"hal"}`, "deadlines"},
		{"empty powers", `{"benchmark":"hal","deadlines":[9]}`, "powers"},
		{"bad deadline", `{"benchmark":"hal","deadlines":[0],"powers":[20]}`, "deadline"},
		{"unknown battery", `{"benchmark":"hal","deadlines":[9],"powers":[20],"battery":{"model":"nimh"}}`, "battery"},
		{"negative capacity", `{"benchmark":"hal","deadlines":[9],"powers":[20],"battery":{"capacity":-1}}`, "capacity"},
		{"no graph", `{"deadlines":[9],"powers":[20]}`, "graph"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/pareto", tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s, want 400", resp.StatusCode, body)
			}
			if !strings.Contains(strings.ToLower(string(body)), tc.wantSub) {
				t.Errorf("error %s does not mention %q", body, tc.wantSub)
			}
		})
	}
}

// TestParetoInBatchMatchesStandalone: a pareto batch item must return the
// byte-identical body of the standalone endpoint.
func TestParetoInBatchMatchesStandalone(t *testing.T) {
	_, ts := newTestServer(t, Config{ExploreWorkers: 2})
	standalone := readBody(t, postJSON(t, ts.URL+"/v1/pareto", halParetoBody))

	resp := postJSON(t, ts.URL+"/v1/batch", fmt.Sprintf(`{"requests":[{"pareto":%s}]}`, halParetoBody))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", resp.StatusCode, body)
	}
	var batch batchJSON
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 1 || batch.Results[0].Status != http.StatusOK {
		t.Fatalf("batch results = %+v", batch.Results)
	}
	if !bytes.Equal(batch.Results[0].Body, standalone) {
		t.Error("batch pareto body differs from the standalone endpoint")
	}
	if batch.Results[0].Cache != "hit" {
		t.Errorf("batch cache = %q, want hit after the standalone warm-up", batch.Results[0].Cache)
	}
}

// TestParetoPointsMetric: serving a front must observe its size in the
// pchls_pareto_points histogram.
func TestParetoPointsMetric(t *testing.T) {
	_, ts := newTestServer(t, Config{ExploreWorkers: 2})
	readBody(t, postJSON(t, ts.URL+"/v1/pareto", halParetoBody))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, resp))
	if !strings.Contains(metrics, "pchls_pareto_points_count 1") {
		t.Errorf("metrics missing pareto front observation:\n%s", metrics)
	}
}
