// Package gen generates seeded, deterministic random synthesis
// instances — CDFGs, functional-unit libraries and constraint points —
// for property-based testing of the synthesis engine and for the
// cdfgtool gen command. Everything is a pure function of the seed and
// the configuration: the same (seed, config) pair produces the same
// instance on every platform and in every run, so a failing seed printed
// by a property test reproduces the failure exactly.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"pchls/internal/cdfg"
	"pchls/internal/library"
)

// GraphConfig parameterizes the random CDFG generator.
type GraphConfig struct {
	// Nodes is the number of computation nodes (input/output transfers
	// are attached on top). Must be >= 1.
	Nodes int
	// MaxWidth bounds the number of computation nodes per layer (<= 0: 4).
	MaxWidth int
	// EdgeDensity in [0, 1] is the probability that a non-source node
	// draws a second predecessor (every non-source always draws one, so
	// the graph is connected layer to layer). <= 0 defaults to 0.5.
	EdgeDensity float64
	// MulFraction, CmpFraction are the approximate operation-mix
	// fractions of multiplies and compares among computations; the rest
	// split evenly between adds and subs. MulFraction <= 0 defaults to
	// 0.3; CmpFraction < 0 defaults to 0.1.
	MulFraction float64
	CmpFraction float64
	// Blocks splits the computation nodes into this many mutually
	// disconnected groups with no edges between them — the shape the
	// hierarchical decomposition path of the synthesizer consumes. A
	// group can itself fall apart into a few weakly-connected components
	// (a layer-0 node no later node picked stays a stray), so the graph
	// has at least Blocks components, not exactly. <= 1 keeps the single
	// group of the historical layout (byte-identical graphs for existing
	// seeds).
	Blocks int
	// LayerLocal draws predecessors from the immediately preceding layer
	// instead of from all earlier layers, producing depth proportional to
	// the node count (with MaxWidth 1 this is a pure chain). The default
	// false keeps the historical any-earlier-layer rule.
	LayerLocal bool
	// Connect bridges the weakly-connected components left after growth
	// with one minimum edge each, guaranteeing a single-component graph —
	// the shape the min-cut partition path consumes. Bridging is
	// deterministic, consumes no randomness (Connect=false graphs stay
	// byte-identical for existing seeds), and preserves the DAG: each
	// bridge runs from the previous component's smallest node ID to the
	// next component's smallest computation with spare fan-in, which is
	// always a higher ID under the generator's lower-to-higher edge rule.
	Connect bool
}

func (c GraphConfig) withDefaults() GraphConfig {
	if c.MaxWidth <= 0 {
		c.MaxWidth = 4
	}
	if c.EdgeDensity <= 0 {
		c.EdgeDensity = 0.5
	}
	if c.EdgeDensity > 1 {
		c.EdgeDensity = 1
	}
	if c.MulFraction <= 0 {
		c.MulFraction = 0.3
	}
	if c.CmpFraction < 0 {
		c.CmpFraction = 0.1
	}
	return c
}

// Graph generates a random layered DAG, fully determined by (seed, cfg):
// computation nodes are grouped into layers of at most MaxWidth, each
// non-source computation draws one mandatory predecessor from an earlier
// layer plus a second with probability EdgeDensity, every source is fed
// by an Input transfer and every sink drives an Output transfer. With
// Blocks > 1 the computations split into that many disjoint
// weakly-connected blocks, each grown by the same layering rule. The
// result always passes cdfg.Validate.
func Graph(seed int64, cfg GraphConfig) *cdfg.Graph {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("gen: Graph: Nodes = %d", cfg.Nodes))
	}
	rng := rand.New(rand.NewSource(seed))
	g := cdfg.New(fmt.Sprintf("gen-%d", seed))

	blocks := cfg.Blocks
	if blocks < 1 {
		blocks = 1
	}
	if blocks > cfg.Nodes {
		blocks = cfg.Nodes
	}
	var all []cdfg.NodeID
	for b := 0; b < blocks; b++ {
		quota := cfg.Nodes / blocks
		if b < cfg.Nodes%blocks {
			quota++
		}
		prefix := ""
		if blocks > 1 {
			prefix = fmt.Sprintf("b%d_", b)
		}
		all = append(all, growBlock(rng, g, cfg, prefix, quota)...)
	}
	if cfg.Connect {
		connectComponents(g)
	}
	// Attach transfers so the graph is arity-valid: computations need at
	// least one predecessor, outputs exactly one, inputs none.
	for _, id := range all {
		n := g.Node(id)
		if len(g.Preds(id)) == 0 {
			in := g.MustAddNode("in_"+n.Name, cdfg.Input)
			g.MustAddEdge(in, id)
		}
		if len(g.Succs(id)) == 0 {
			out := g.MustAddNode("out_"+n.Name, cdfg.Output)
			g.MustAddEdge(id, out)
		}
	}
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("gen: generated invalid graph (seed %d): %v", seed, err))
	}
	return g
}

// connectComponents adds one bridging edge per component boundary so the
// graph becomes weakly connected, before transfers are attached (a bridged
// target then simply skips its input transfer). For each consecutive pair
// of components (ordered by smallest member, as Components returns them),
// the bridge runs from the smallest node of the earlier component to the
// smallest node of the later one that still has spare fan-in — a source
// always qualifies, so a target always exists. The source precedes the
// target in ID order and the components share no path, so the graph stays
// acyclic; no randomness is consumed.
func connectComponents(g *cdfg.Graph) {
	comps := g.Components()
	for i := 1; i < len(comps); i++ {
		u := comps[i-1][0]
		for _, v := range comps[i] {
			n := g.Node(v)
			if len(g.Preds(v)) < n.Op.MaxFanIn() {
				g.MustAddEdge(u, v)
				break
			}
		}
	}
}

// growBlock appends one weakly-connected layered block of computation
// nodes to g and returns their IDs. It consumes rng exactly as the
// single-block layout always did, so Blocks <= 1 graphs are byte-identical
// across versions.
func growBlock(rng *rand.Rand, g *cdfg.Graph, cfg GraphConfig, prefix string, nodes int) []cdfg.NodeID {
	var earlier, prev []cdfg.NodeID
	made, layer := 0, 0
	for made < nodes {
		width := rng.Intn(cfg.MaxWidth) + 1
		if width > nodes-made {
			width = nodes - made
		}
		var thisLayer []cdfg.NodeID
		for k := 0; k < width; k++ {
			id := g.MustAddNode(fmt.Sprintf("%sn%d_%d", prefix, layer, k), pickOp(rng, cfg))
			pool := earlier
			if cfg.LayerLocal {
				pool = prev
			}
			if len(pool) > 0 {
				first := pool[rng.Intn(len(pool))]
				g.MustAddEdge(first, id)
				if rng.Float64() < cfg.EdgeDensity {
					second := pool[rng.Intn(len(pool))]
					if second != first {
						g.MustAddEdge(second, id)
					}
				}
			}
			thisLayer = append(thisLayer, id)
			made++
		}
		earlier = append(earlier, thisLayer...)
		prev = thisLayer
		layer++
	}
	return earlier
}

func pickOp(rng *rand.Rand, cfg GraphConfig) cdfg.Op {
	r := rng.Float64()
	switch {
	case r < cfg.MulFraction:
		return cdfg.Mul
	case r < cfg.MulFraction+cfg.CmpFraction:
		return cdfg.Cmp
	case rng.Intn(2) == 0:
		return cdfg.Add
	default:
		return cdfg.Sub
	}
}

// LibraryConfig parameterizes the random functional-unit library
// generator.
type LibraryConfig struct {
	// ModulesPerOp is the maximum number of alternative modules per
	// computation operation; each op gets 1..ModulesPerOp choices
	// (<= 0: 2). Input and output transfers always get exactly one
	// module each.
	ModulesPerOp int
	// DelayMax bounds module delays; delays are drawn uniformly from
	// 1..DelayMax (<= 0: 3).
	DelayMax int
	// AreaMin/AreaMax bound module areas (defaults 20..200 when both
	// are zero).
	AreaMin, AreaMax float64
	// PowerMin/PowerMax bound per-cycle module powers (defaults 0.5..8
	// when both are zero).
	PowerMin, PowerMax float64
	// ALUChance in [0, 1] is the probability of adding one multi-function
	// ALU module implementing +, - and > (default 0 = never).
	ALUChance float64
	// Levels is the number of voltage operating points per computation
	// module, drawn down the ladder 5, 3.3, 2.4, 1.8, 1.2 V: level 0 is
	// the nominal point with the module's drawn delay and power, and each
	// lower voltage stretches the delay (with a small random wobble) and
	// scales the power by (V/V0)^2. Capped at the ladder length.
	// <= 1 keeps single-level modules and consumes no extra randomness,
	// so existing seeds stay byte-identical. Transfers and the ALU never
	// get extra levels.
	Levels int
}

// voltageLadder is the descending supply-voltage menu multi-level
// generated modules draw operating points from.
var voltageLadder = []float64{5, 3.3, 2.4, 1.8, 1.2}

func (c LibraryConfig) withDefaults() LibraryConfig {
	if c.ModulesPerOp <= 0 {
		c.ModulesPerOp = 2
	}
	if c.DelayMax <= 0 {
		c.DelayMax = 3
	}
	if c.AreaMin == 0 && c.AreaMax == 0 {
		c.AreaMin, c.AreaMax = 20, 200
	}
	if c.PowerMin == 0 && c.PowerMax == 0 {
		c.PowerMin, c.PowerMax = 0.5, 8
	}
	return c
}

// round2 quantizes generated floats to 2 decimals so printed instances
// (cdfgtool gen -libout) reparse to the exact same library.
func round2(v float64) float64 { return math.Round(v*100) / 100 }

// Library generates a random validated library fully determined by
// (seed, cfg). Every computation operation (+, -, >, *) gets 1 to
// ModulesPerOp implementing modules with areas, delays and powers drawn
// from the configured ranges (modules with more delay tend to get less
// power, mimicking the serial/parallel trade-off of the paper's Table 1);
// input and output transfers get one cheap single-cycle module each, so
// any generated graph is covered.
func Library(seed int64, cfg LibraryConfig) *library.Library {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	var mods []library.Module
	areaSpan := cfg.AreaMax - cfg.AreaMin
	powerSpan := cfg.PowerMax - cfg.PowerMin
	for _, op := range []struct {
		op    cdfg.Op
		label string
	}{
		{cdfg.Add, "add"}, {cdfg.Sub, "sub"}, {cdfg.Cmp, "cmp"}, {cdfg.Mul, "mul"},
	} {
		k := rng.Intn(cfg.ModulesPerOp) + 1
		for i := 0; i < k; i++ {
			delay := rng.Intn(cfg.DelayMax) + 1
			// Slower variants draw proportionally less power, so multi-
			// cycle modules are the low-power/low-area end of the menu.
			scale := 1.0 / float64(delay)
			m := library.Module{
				Name:  fmt.Sprintf("%s%d", op.label, i),
				Ops:   []cdfg.Op{op.op},
				Area:  round2(cfg.AreaMin + rng.Float64()*areaSpan*scale),
				Delay: delay,
				Power: round2(cfg.PowerMin + rng.Float64()*powerSpan*scale),
			}
			if cfg.Levels > 1 {
				m.Levels = voltageLevels(rng, cfg.Levels, m.Delay, m.Power)
			}
			mods = append(mods, m)
		}
	}
	if rng.Float64() < cfg.ALUChance {
		mods = append(mods, library.Module{
			Name:  "alu",
			Ops:   []cdfg.Op{cdfg.Add, cdfg.Sub, cdfg.Cmp},
			Area:  round2(cfg.AreaMin + rng.Float64()*areaSpan),
			Delay: 1,
			Power: round2(cfg.PowerMin + rng.Float64()*powerSpan),
		})
	}
	mods = append(mods,
		library.Module{Name: "in", Ops: []cdfg.Op{cdfg.Input}, Area: round2(cfg.AreaMin / 2), Delay: 1, Power: round2(cfg.PowerMin)},
		library.Module{Name: "out", Ops: []cdfg.Op{cdfg.Output}, Area: round2(cfg.AreaMin / 2), Delay: 1, Power: round2(cfg.PowerMin)},
	)
	lib, err := library.New(mods)
	if err != nil {
		panic(fmt.Sprintf("gen: generated invalid library (seed %d): %v", seed, err))
	}
	return lib
}

// voltageLevels derives a module's operating-point ladder: level 0 is
// the nominal point at the ladder's top voltage, and each lower voltage
// stretches the delay by V0/V with a ±10% wobble (always by at least one
// cycle) while the power scales by the ideal CMOS (V/V0)^2 and is forced
// below the previous level (down to a 0.01 floor). Levels are therefore
// mutually non-dominated: trading cycles for power is a real choice.
func voltageLevels(rng *rand.Rand, n int, delay int, power float64) []library.OperatingPoint {
	if n > len(voltageLadder) {
		n = len(voltageLadder)
	}
	v0 := voltageLadder[0]
	levels := []library.OperatingPoint{{Voltage: v0, Delay: delay, Power: power}}
	for j := 1; j < n; j++ {
		v := voltageLadder[j]
		d := int(math.Ceil(float64(delay) * (v0 / v) * (0.9 + 0.2*rng.Float64())))
		if d <= levels[j-1].Delay {
			d = levels[j-1].Delay + 1
		}
		p := round2(power * (v * v) / (v0 * v0))
		if p >= levels[j-1].Power {
			p = round2(levels[j-1].Power * 0.8)
		}
		if p < 0.01 {
			p = 0.01
		}
		levels = append(levels, library.OperatingPoint{Voltage: v, Delay: d, Power: p})
	}
	return levels
}

// Instance is one complete random synthesis problem.
type Instance struct {
	Seed     int64
	Graph    *cdfg.Graph
	Library  *library.Library
	Deadline int
	PowerMax float64
}

// InstanceConfig parameterizes Instances.
type InstanceConfig struct {
	Graph   GraphConfig
	Library LibraryConfig
	// SlackMin/SlackMax bound the deadline slack factor applied to the
	// fastest-module critical path: T = ceil(cp * slack). Defaults
	// 1.2..2.5 when both are zero.
	SlackMin, SlackMax float64
	// PowerFactorMin/Max bound the power cap as a multiple of the
	// tightest cap any schedule could meet (the maximum over ops of the
	// minimum implementing-module power). Defaults 1.5..4 when both are
	// zero. A factor of 0 in a derived point means unconstrained.
	PowerFactorMin, PowerFactorMax float64
}

func (c InstanceConfig) withDefaults() InstanceConfig {
	if c.SlackMin == 0 && c.SlackMax == 0 {
		c.SlackMin, c.SlackMax = 1.2, 2.5
	}
	if c.PowerFactorMin == 0 && c.PowerFactorMax == 0 {
		c.PowerFactorMin, c.PowerFactorMax = 1.5, 4
	}
	return c
}

// NewInstance derives one random synthesis problem from the seed: a
// graph, a library covering it, and a constraint point derived from the
// instance's own critical path and power floor so that most instances
// are feasible without being trivial. Deterministic in (seed, cfg).
func NewInstance(seed int64, cfg InstanceConfig) Instance {
	cfg = cfg.withDefaults()
	g := Graph(seed, cfg.Graph)
	lib := Library(seed^0x5DEECE66D, cfg.Library)
	rng := rand.New(rand.NewSource(seed ^ 0x2545F4914F6CDD1D))

	// Critical path under the fastest modules: the latency-optimistic
	// bound the deadline slack multiplies.
	cp, _ := g.CriticalPath(func(n cdfg.Node) int {
		m, err := lib.Fastest(n.Op)
		if err != nil {
			return 1
		}
		return m.Delay
	})
	if cp < 1 {
		cp = 1
	}
	slack := cfg.SlackMin + rng.Float64()*(cfg.SlackMax-cfg.SlackMin)
	deadline := int(math.Ceil(float64(cp) * slack))
	if deadline < cp {
		deadline = cp
	}

	powerMax := 0.0
	if floor, err := lib.MinPowerFloor(g); err == nil {
		factor := cfg.PowerFactorMin + rng.Float64()*(cfg.PowerFactorMax-cfg.PowerFactorMin)
		powerMax = round2(floor * factor)
	}
	// One instance in five is latency-only, exercising the unconstrained
	// power path.
	if rng.Intn(5) == 0 {
		powerMax = 0
	}
	return Instance{Seed: seed, Graph: g, Library: lib, Deadline: deadline, PowerMax: powerMax}
}
