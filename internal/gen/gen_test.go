package gen_test

import (
	"strings"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/gen"
	"pchls/internal/library"
)

func TestGraphDeterministic(t *testing.T) {
	cfg := gen.GraphConfig{Nodes: 25, MaxWidth: 5, EdgeDensity: 0.7, MulFraction: 0.4, CmpFraction: 0.1}
	for seed := int64(1); seed <= 10; seed++ {
		a := gen.Graph(seed, cfg).Text()
		b := gen.Graph(seed, cfg).Text()
		if a != b {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

func TestGraphSeedsDiffer(t *testing.T) {
	cfg := gen.GraphConfig{Nodes: 12}
	a := gen.Graph(1, cfg).Text()
	distinct := false
	for seed := int64(2); seed <= 6; seed++ {
		if gen.Graph(seed, cfg).Text() != a {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("five different seeds all produced the same graph")
	}
}

func TestGraphShape(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		cfg := gen.GraphConfig{Nodes: 3 + int(seed%20), MaxWidth: 1 + int(seed%4)}
		g := gen.Graph(seed, cfg)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: invalid graph: %v", seed, err)
		}
		comps := 0
		for _, n := range g.Nodes() {
			if n.Op != cdfg.Input && n.Op != cdfg.Output {
				comps++
			}
		}
		if comps != cfg.Nodes {
			t.Errorf("seed %d: %d computation nodes, want %d", seed, comps, cfg.Nodes)
		}
		// Text round-trips: cdfgtool gen output must reload identically.
		g2, err := cdfg.ParseString(g.Text())
		if err != nil {
			t.Fatalf("seed %d: generated graph does not reparse: %v", seed, err)
		}
		if g2.Text() != g.Text() {
			t.Errorf("seed %d: text round trip changed the graph", seed)
		}
	}
}

// TestGraphConnect checks the -connect option: bridging must yield exactly
// one weakly-connected component on every shape (multi-block shapes are
// the interesting case), stay a valid DAG, consume no generator state
// (node set and op mix identical to the unbridged graph), and be
// deterministic.
func TestGraphConnect(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		cfg := gen.GraphConfig{
			Nodes: 10 + int(seed%40), MaxWidth: 1 + int(seed%5),
			Blocks: int(seed % 6),
		}
		plain := gen.Graph(seed, cfg)
		cfg.Connect = true
		g := gen.Graph(seed, cfg)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: invalid connected graph: %v", seed, err)
		}
		if got := len(g.Components()); got != 1 {
			t.Fatalf("seed %d: %d components with Connect, want 1", seed, got)
		}
		if _, err := g.TopoOrder(); err != nil {
			t.Fatalf("seed %d: bridging broke the DAG: %v", seed, err)
		}
		if g.Text() != gen.Graph(seed, cfg).Text() {
			t.Fatalf("seed %d: connected generation is not deterministic", seed)
		}
		// Bridging happens before transfer attachment and consumes no
		// generator state: the computation nodes (the rng-driven part)
		// must be identical to the unbridged graph's. Only input
		// transfers may disappear — a bridged target's data now arrives
		// from another block instead of from outside.
		comps := func(g *cdfg.Graph) map[string]cdfg.Op {
			m := make(map[string]cdfg.Op)
			for _, n := range g.Nodes() {
				if n.Op != cdfg.Input && n.Op != cdfg.Output {
					m[n.Name] = n.Op
				}
			}
			return m
		}
		want := comps(plain)
		got := comps(g)
		if len(got) != len(want) {
			t.Fatalf("seed %d: Connect changed the computation count: %d vs %d", seed, len(got), len(want))
		}
		for name, op := range want {
			if got[name] != op {
				t.Fatalf("seed %d: Connect changed computation %q: %v vs %v", seed, got[name], op, name)
			}
		}
		if g.N() > plain.N() {
			t.Fatalf("seed %d: Connect added nodes: %d vs %d", seed, g.N(), plain.N())
		}
		if len(plain.Components()) == 1 && g.Text() != plain.Text() {
			t.Fatalf("seed %d: already-connected graph changed under Connect", seed)
		}
	}
}

func TestLibraryDeterministicAndRoundTrips(t *testing.T) {
	cfg := gen.LibraryConfig{ModulesPerOp: 3, DelayMax: 4, ALUChance: 0.5}
	for seed := int64(1); seed <= 25; seed++ {
		lib := gen.Library(seed, cfg)
		if gen.Library(seed, cfg).Text() != lib.Text() {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		// The serialized library must reparse to the same library — this
		// is what makes cdfgtool gen -libout output usable with -lib.
		lib2, err := library.Parse(strings.NewReader(lib.Text()))
		if err != nil {
			t.Fatalf("seed %d: generated library does not reparse: %v\n%s", seed, err, lib.Text())
		}
		if lib2.Text() != lib.Text() {
			t.Errorf("seed %d: text round trip changed the library:\n%s\nvs\n%s", seed, lib.Text(), lib2.Text())
		}
	}
}

func TestLibraryCoversGeneratedGraphs(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		inst := gen.NewInstance(seed, gen.InstanceConfig{
			Graph:   gen.GraphConfig{Nodes: 10},
			Library: gen.LibraryConfig{ALUChance: 0.3},
		})
		if missing := inst.Library.Covers(inst.Graph); missing != nil {
			t.Errorf("seed %d: library does not cover %v", seed, missing)
		}
		if inst.Deadline <= 0 {
			t.Errorf("seed %d: non-positive deadline %d", seed, inst.Deadline)
		}
		if inst.PowerMax < 0 {
			t.Errorf("seed %d: negative power cap %g", seed, inst.PowerMax)
		}
	}
}

func TestInstanceDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := gen.NewInstance(seed, gen.InstanceConfig{Graph: gen.GraphConfig{Nodes: 8}})
		b := gen.NewInstance(seed, gen.InstanceConfig{Graph: gen.GraphConfig{Nodes: 8}})
		if a.Deadline != b.Deadline || a.PowerMax != b.PowerMax ||
			a.Graph.Text() != b.Graph.Text() || a.Library.Text() != b.Library.Text() {
			t.Fatalf("seed %d: NewInstance is not deterministic", seed)
		}
	}
}

func TestGraphPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Nodes = 0 did not panic")
		}
	}()
	gen.Graph(1, gen.GraphConfig{Nodes: 0})
}
