package gen_test

import (
	"strings"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/gen"
)

// TestBlocksDisjoint checks that Blocks produces at least that many
// weakly-connected components (a group can shed stray roots on top), and
// that no block name ever crosses component boundaries — the contract the
// decomposition path and the blocks preset rely on.
func TestBlocksDisjoint(t *testing.T) {
	for _, blocks := range []int{2, 3, 8} {
		for seed := int64(1); seed <= 10; seed++ {
			g := gen.Graph(seed, gen.GraphConfig{Nodes: 64, Blocks: blocks})
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d blocks %d: invalid graph: %v", seed, blocks, err)
			}
			comps := g.Components()
			if len(comps) < blocks {
				t.Fatalf("seed %d blocks %d: only %d weakly-connected components", seed, blocks, len(comps))
			}
			// Every component must stay inside one block prefix.
			for _, ids := range comps {
				prefix := blockPrefix(g.Node(ids[0]).Name)
				for _, id := range ids[1:] {
					if got := blockPrefix(g.Node(id).Name); got != prefix {
						t.Fatalf("seed %d blocks %d: component mixes blocks %q and %q", seed, blocks, prefix, got)
					}
				}
			}
		}
	}
}

// blockPrefix extracts the "bN_" block tag from a generated node name
// (transfer names wrap the computation name, so the tag is inside).
func blockPrefix(name string) string {
	name = strings.TrimPrefix(name, "in_")
	name = strings.TrimPrefix(name, "out_")
	j := strings.Index(name, "_")
	if j < 0 || name[0] != 'b' {
		return ""
	}
	return name[:j+1]
}

// TestBlocksOneIsHistoricalLayout pins backward compatibility: Blocks
// values <= 1 (including the zero value every existing caller passes)
// must generate byte-identical graphs to each other for the same seed —
// the refactor that introduced Blocks must not have moved a single rng
// draw on the legacy path.
func TestBlocksOneIsHistoricalLayout(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		zero := gen.Graph(seed, gen.GraphConfig{Nodes: 30}).Text()
		one := gen.Graph(seed, gen.GraphConfig{Nodes: 30, Blocks: 1}).Text()
		if zero != one {
			t.Fatalf("seed %d: Blocks=0 and Blocks=1 diverge", seed)
		}
	}
}

// TestPresetConfigs checks every preset generates valid graphs of the
// requested size and that the blocks preset actually decomposes.
func TestPresetConfigs(t *testing.T) {
	for _, p := range gen.Presets() {
		cfg, err := gen.PresetConfig(p, 300)
		if err != nil {
			t.Fatalf("preset %s: %v", p, err)
		}
		if cfg.Nodes != 300 {
			t.Fatalf("preset %s: nodes = %d, want 300", p, cfg.Nodes)
		}
		g := gen.Graph(7, cfg)
		if err := g.Validate(); err != nil {
			t.Fatalf("preset %s: invalid graph: %v", p, err)
		}
		comps := len(g.Components())
		if p == gen.PresetBlocks && comps < 2 {
			t.Fatalf("preset blocks: only %d component(s)", comps)
		}
		if p == gen.PresetChain && comps != 1 {
			t.Fatalf("preset chain: %d components, want a single chain", comps)
		}
	}
	if _, err := gen.PresetConfig("no-such-preset", 100); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestPresetShapes spot-checks the distinguishing shape property of the
// chain and wide presets via the critical path: a chain of n nodes is
// much deeper than a wide layout of the same n.
func TestPresetShapes(t *testing.T) {
	depth := func(p gen.Preset) int {
		cfg, err := gen.PresetConfig(p, 60)
		if err != nil {
			t.Fatalf("preset %s: %v", p, err)
		}
		cp, _ := gen.Graph(5, cfg).CriticalPath(func(cdfg.Node) int { return 1 })
		return cp
	}
	if c, w := depth(gen.PresetChain), depth(gen.PresetWide); c <= 2*w {
		t.Fatalf("chain depth %d not much deeper than wide depth %d", c, w)
	}
}
