package gen

import "fmt"

// Preset names a ready-made DAG shape for the scaling benchmark lane, the
// property sweeps and `cdfgtool gen -preset`. Each preset is just a
// GraphConfig recipe sized to a node count; individual knobs can still be
// overridden after PresetConfig returns.
type Preset string

// The known graph-shape presets.
const (
	// PresetChain is deep and narrow: one node per layer, sparse second
	// edges — the worst case for mobility (long critical path, tiny
	// windows).
	PresetChain Preset = "chain"
	// PresetWide is shallow and parallel: layers of up to nodes/8
	// operations, the best case for sharing pressure and the power cap.
	PresetWide Preset = "wide"
	// PresetLayered is the historical default mix (layers of up to 4,
	// one-in-two second edges).
	PresetLayered Preset = "layered"
	// PresetMixed is denser and busier: wider layers, 70% second-edge
	// probability, more multiplies and compares.
	PresetMixed Preset = "mixed"
	// PresetBlocks splits the nodes into disjoint weakly-connected
	// subgraphs (~125 nodes each, 2..16 blocks) — the shape the
	// hierarchical decomposition path synthesizes region by region.
	PresetBlocks Preset = "blocks"
)

// Presets lists every known preset in a fixed order.
func Presets() []Preset {
	return []Preset{PresetChain, PresetWide, PresetLayered, PresetMixed, PresetBlocks}
}

// PresetConfig returns the GraphConfig of the named preset sized to the
// given computation-node count.
func PresetConfig(p Preset, nodes int) (GraphConfig, error) {
	switch p {
	case PresetChain:
		return GraphConfig{Nodes: nodes, MaxWidth: 1, EdgeDensity: 0.15, LayerLocal: true}, nil
	case PresetWide:
		w := nodes / 8
		if w < 8 {
			w = 8
		}
		return GraphConfig{Nodes: nodes, MaxWidth: w, EdgeDensity: 0.3}, nil
	case PresetLayered:
		return GraphConfig{Nodes: nodes}, nil
	case PresetMixed:
		return GraphConfig{Nodes: nodes, MaxWidth: 6, EdgeDensity: 0.7, MulFraction: 0.35, CmpFraction: 0.15}, nil
	case PresetBlocks:
		b := nodes / 125
		if b < 2 {
			b = 2
		}
		if b > 16 {
			b = 16
		}
		return GraphConfig{Nodes: nodes, Blocks: b}, nil
	}
	return GraphConfig{}, fmt.Errorf("gen: unknown preset %q (known: %v)", p, Presets())
}
