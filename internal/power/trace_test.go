package power

import (
	"testing"
	"testing/quick"
)

func TestKiBaMTraceConsistentWithLifetime(t *testing.T) {
	b, _ := NewKiBaM(200, 0.3, 0.1)
	profile := []float64{8, 2, 1}
	_, cycles := b.Lifetime(profile, 1000)
	trace := b.Trace(profile, 100000)
	alive := 0
	for _, p := range trace {
		if p.Alive {
			alive++
		}
	}
	if alive != cycles {
		t.Fatalf("trace alive cycles %d, lifetime says %d", alive, cycles)
	}
	if last := trace[len(trace)-1]; last.Alive {
		t.Fatal("trace should end with the dying cycle")
	}
}

func TestPeukertTraceConsistentWithLifetime(t *testing.T) {
	b, _ := NewPeukert(150, 1.2)
	profile := []float64{5, 3}
	_, cycles := b.Lifetime(profile, 1000)
	trace := b.Trace(profile, 100000)
	alive := 0
	for _, p := range trace {
		if p.Alive {
			alive++
		}
	}
	if alive != cycles {
		t.Fatalf("trace alive cycles %d, lifetime says %d", alive, cycles)
	}
}

func TestTraceEmptyInputs(t *testing.T) {
	kb, _ := NewKiBaM(10, 0.5, 0.5)
	pk, _ := NewPeukert(10, 1.1)
	if kb.Trace(nil, 10) != nil || pk.Trace(nil, 10) != nil {
		t.Fatal("empty profile should trace nil")
	}
	if kb.Trace([]float64{1}, 0) != nil || pk.Trace([]float64{1}, 0) != nil {
		t.Fatal("zero cycles should trace nil")
	}
}

func TestTraceRespectsMaxCycles(t *testing.T) {
	kb, _ := NewKiBaM(1e9, 0.5, 0.5)
	trace := kb.Trace([]float64{1}, 25)
	if len(trace) != 25 {
		t.Fatalf("trace length %d, want 25", len(trace))
	}
	for _, p := range trace {
		if !p.Alive {
			t.Fatal("huge battery died")
		}
	}
}

func TestQuickKiBaMTraceChargeMonotone(t *testing.T) {
	// Total stored charge (available + bound) never increases.
	f := func(seed uint8) bool {
		b, err := NewKiBaM(100+float64(seed), 0.3, 0.2)
		if err != nil {
			return false
		}
		trace := b.Trace([]float64{3, 1, 0}, 500)
		prev := b.CapacityAvailable + b.CapacityBound
		for _, p := range trace {
			total := p.Available + p.Bound
			if total > prev+1e-9 {
				return false
			}
			prev = total
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

var _ = []Tracer{(*KiBaM)(nil), (*Peukert)(nil)} // interface conformance
