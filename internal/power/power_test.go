package power

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestAnalyze(t *testing.T) {
	s := Analyze([]float64{1, 1, 10, 0})
	if s.Peak != 10 || s.Energy != 12 || s.Cycles != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %g", s.Mean)
	}
	if s.SpikeCycles != 1 { // only the 10 exceeds 2*mean = 6
		t.Fatalf("spikes = %d", s.SpikeCycles)
	}
	wantVar := (4.0 + 4 + 49 + 9) / 4
	if math.Abs(s.Variance-wantVar) > 1e-9 {
		t.Fatalf("variance = %g, want %g", s.Variance, wantVar)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if s := Analyze(nil); s != (Stats{}) {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestPeukertValidation(t *testing.T) {
	if _, err := NewPeukert(0, 1.2); err == nil {
		t.Fatal("accepted zero capacity")
	}
	if _, err := NewPeukert(100, 0.9); err == nil {
		t.Fatal("accepted exponent < 1")
	}
	if _, err := NewPeukert(100, 3.5); err == nil {
		t.Fatal("accepted exponent > 3")
	}
	if _, err := NewPeukert(math.NaN(), 1.2); err == nil {
		t.Fatal("accepted NaN capacity")
	}
}

func TestPeukertIdealBatteryCountsEnergy(t *testing.T) {
	b, err := NewPeukert(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Profile drawing 10 per period of 2 cycles: 100/10 = 10 periods.
	periods, cycles := b.Lifetime([]float64{4, 6}, 1000)
	if periods != 10 || cycles != 20 {
		t.Fatalf("ideal battery: %d periods, %d cycles", periods, cycles)
	}
}

func TestPeukertPenalizesSpikes(t *testing.T) {
	b, _ := NewPeukert(1000, 1.3)
	flat := []float64{5, 5, 5, 5}   // energy 20
	spiky := []float64{17, 1, 1, 1} // energy 20
	cmp, err := Compare(b, spiky, flat, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CyclesB <= cmp.CyclesA {
		t.Fatalf("flat profile should outlive spiky: %+v", cmp)
	}
	if cmp.ExtensionPercent() <= 0 {
		t.Fatalf("extension = %g", cmp.ExtensionPercent())
	}
}

func TestPeukertZeroInputs(t *testing.T) {
	b, _ := NewPeukert(10, 1.2)
	if p, c := b.Lifetime(nil, 10); p != 0 || c != 0 {
		t.Fatal("empty profile should survive 0")
	}
	if p, c := b.Lifetime([]float64{1}, 0); p != 0 || c != 0 {
		t.Fatal("zero periods should survive 0")
	}
}

func TestKiBaMValidation(t *testing.T) {
	cases := []struct{ cap_, c, k float64 }{
		{0, 0.5, 0.5}, {-1, 0.5, 0.5}, {100, 0, 0.5}, {100, 1, 0.5},
		{100, 0.5, 0}, {100, 0.5, 1.5},
	}
	for _, tc := range cases {
		if _, err := NewKiBaM(tc.cap_, tc.c, tc.k); err == nil {
			t.Errorf("NewKiBaM(%v,%v,%v) accepted", tc.cap_, tc.c, tc.k)
		}
	}
	b, err := NewKiBaM(100, 0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if b.CapacityAvailable != 40 || b.CapacityBound != 60 {
		t.Fatalf("wells = %g, %g", b.CapacityAvailable, b.CapacityBound)
	}
}

func TestKiBaMRecoversDuringIdle(t *testing.T) {
	b, _ := NewKiBaM(200, 0.3, 0.3)
	// Heavy burst with idle recovery vs the same burst back-to-back.
	withIdle := []float64{20, 0, 0, 0}
	backToBack := []float64{20, 20, 0, 0} // same energy per 2 periods
	_, cyclesIdle := b.Lifetime(withIdle, 10000)
	_, cyclesBurst := b.Lifetime(backToBack, 10000)
	// Normalize: withIdle draws 20 per 4 cycles, backToBack 40 per 4.
	// Per unit of energy the recovered battery must deliver at least as
	// much. Compare total energy delivered.
	energyIdle := float64(cyclesIdle) / 4 * 20
	energyBurst := float64(cyclesBurst) / 4 * 40
	if energyIdle < energyBurst {
		t.Fatalf("idle recovery delivered %g <= burst %g", energyIdle, energyBurst)
	}
}

func TestKiBaMCappedProfileOutlivesSpiky(t *testing.T) {
	// The paper's Figure 1 story: same energy, capped peak lasts longer.
	b, _ := NewKiBaM(500, 0.2, 0.1)
	spiky := []float64{30, 2, 2, 2, 2, 2}  // energy 40, peak 30
	capped := []float64{10, 6, 6, 6, 6, 6} // energy 40, peak 10
	cmp, err := Compare(b, spiky, capped, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CyclesB <= cmp.CyclesA {
		t.Fatalf("capped should outlive spiky: %+v", cmp)
	}
}

func TestKiBaMDiesWhenDemandExceedsAvailable(t *testing.T) {
	b, _ := NewKiBaM(100, 0.1, 0.05) // only 10 immediately available
	periods, cycles := b.Lifetime([]float64{50}, 10)
	if periods != 0 || cycles != 0 {
		t.Fatalf("demand above available well: %d periods %d cycles", periods, cycles)
	}
}

func TestCompareEmptyProfile(t *testing.T) {
	b, _ := NewPeukert(10, 1.1)
	if _, err := Compare(b, nil, []float64{1}, 10); !errors.Is(err, ErrEmptyProfile) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Compare(b, []float64{1}, nil, 10); !errors.Is(err, ErrEmptyProfile) {
		t.Fatalf("err = %v", err)
	}
}

func TestExtensionPercent(t *testing.T) {
	c := Comparison{PeriodsA: 100, PeriodsB: 125}
	if got := c.ExtensionPercent(); got != 25 {
		t.Fatalf("extension = %g", got)
	}
	if (Comparison{}).ExtensionPercent() != 0 {
		t.Fatal("zero lifetime extension should be 0")
	}
}

func TestQuickPeukertMonotoneInExponent(t *testing.T) {
	// Property: for a spiky profile, a higher Peukert exponent never
	// extends the lifetime.
	f := func(seed uint8) bool {
		peak := 5 + float64(seed%20)
		profile := []float64{peak, 1, 1, 1}
		b1, _ := NewPeukert(10000, 1.05)
		b2, _ := NewPeukert(10000, 1.25)
		_, c1 := b1.Lifetime(profile, 100000)
		_, c2 := b2.Lifetime(profile, 100000)
		return c2 <= c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKiBaMChargeConserved(t *testing.T) {
	// Property: total energy delivered never exceeds total capacity.
	f := func(seed uint8, pRaw uint8) bool {
		capTotal := 100 + float64(seed)
		b, err := NewKiBaM(capTotal, 0.3, 0.2)
		if err != nil {
			return false
		}
		draw := 1 + float64(pRaw%10)
		_, cycles := b.Lifetime([]float64{draw}, 1000000)
		return draw*float64(cycles) <= capTotal+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
