package power_test

import (
	"testing"

	"pchls/internal/power"
)

// TestLifetimePinnedPeukert pins Peukert lifetimes against hand-computed
// traces. With exponent k, a cycle drawing current I costs I^k charge
// units; the battery dies on the first cycle whose cost exceeds the
// remaining charge.
func TestLifetimePinnedPeukert(t *testing.T) {
	cases := []struct {
		name               string
		capacity, exponent float64
		profile            []float64
		maxPeriods         int
		periods, cycles    int
	}{
		// Ideal battery (k=1): charge 10, cost 3/cycle -> 10,7,4,1, then
		// 3 > 1: three full single-cycle periods.
		{"ideal-linear", 10, 1, []float64{3}, 1 << 20, 3, 3},
		// k=2: [1,2] costs 1+4=5 per period; 10/5 = exactly 2 periods,
		// dying on the first cycle of period 3 with 0 charge left.
		{"quadratic-two-periods", 10, 2, []float64{1, 2}, 1 << 20, 2, 4},
		// k=2: a single cycle at 3 costs 9 of 10; the second costs 9 > 1.
		{"quadratic-spike", 10, 2, []float64{3}, 1 << 20, 1, 1},
		// At the 1-unit reference current the exponent is irrelevant:
		// capacity 10 lasts exactly 10 cycles for any k.
		{"reference-current-k1", 10, 1, []float64{1}, 1 << 20, 10, 10},
		{"reference-current-k2", 10, 2, []float64{1}, 1 << 20, 10, 10},
		// maxPeriods caps the simulation before the battery dies.
		{"capped", 100, 1, []float64{1}, 5, 5, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := power.NewPeukert(tc.capacity, tc.exponent)
			if err != nil {
				t.Fatalf("NewPeukert: %v", err)
			}
			periods, cycles := b.Lifetime(tc.profile, tc.maxPeriods)
			if periods != tc.periods || cycles != tc.cycles {
				t.Fatalf("Lifetime = (%d periods, %d cycles), want (%d, %d)",
					periods, cycles, tc.periods, tc.cycles)
			}
		})
	}
}

// TestLifetimePinnedKiBaM pins KiBaM lifetimes against hand-computed
// traces with exactly representable parameters (capacity 10, split 0.5,
// rate 1): avail = bound = 5, and after a draw the wells exchange
// flow = (h2-h1)*0.25 with h1 = avail/0.5, h2 = bound/0.5.
func TestLifetimePinnedKiBaM(t *testing.T) {
	cases := []struct {
		name            string
		profile         []float64
		maxPeriods      int
		periods, cycles int
	}{
		// Draw 4: avail 5->1, heads 2 vs 10, flow 2 -> wells 3/3; the
		// second cycle's 4 > 3 kills it after one period.
		{"spike-dies-fast", []float64{4}, 1 << 20, 1, 1},
		// Draw 2 per cycle: avail/bound trace (4,4),(3,3),(2,2),(1,1),
		// then 2 > 1 on cycle 5 — four periods, having delivered only 8
		// of the 10 units (the rate-capacity effect).
		{"flat-lasts-longer", []float64{2}, 1 << 20, 4, 4},
		// Same trace viewed as two-cycle periods: dies on cycle 5, which
		// is mid-period 3, so only 2 whole periods count.
		{"two-cycle-period", []float64{2, 2}, 1 << 20, 2, 4},
		{"capped", []float64{1}, 3, 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := power.NewKiBaM(10, 0.5, 1)
			if err != nil {
				t.Fatalf("NewKiBaM: %v", err)
			}
			periods, cycles := b.Lifetime(tc.profile, tc.maxPeriods)
			if periods != tc.periods || cycles != tc.cycles {
				t.Fatalf("Lifetime = (%d periods, %d cycles), want (%d, %d)",
					periods, cycles, tc.periods, tc.cycles)
			}
		})
	}
}

// TestCompareReportsModel verifies Compare records which battery model
// produced the lifetimes.
func TestCompareReportsModel(t *testing.T) {
	pk, err := power.NewPeukert(10, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := power.NewKiBaM(10, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	profile := []float64{1, 2}
	for _, tc := range []struct {
		b    power.Battery
		want string
	}{
		{pk, "peukert"},
		{kb, "kibam"},
	} {
		cmp, err := power.Compare(tc.b, profile, profile, 100)
		if err != nil {
			t.Fatalf("Compare(%s): %v", tc.want, err)
		}
		if cmp.Model != tc.want {
			t.Fatalf("Comparison.Model = %q, want %q", cmp.Model, tc.want)
		}
	}
}
