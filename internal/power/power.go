// Package power analyzes per-cycle power profiles and models the battery
// behaviour that motivates the paper: the usable charge of a real battery
// depends strongly on the discharge current profile (the rate-capacity
// effect), so schedules that eliminate power spikes extend battery
// lifetime even at equal total energy. Two standard open models are
// provided — Peukert's law and the kinetic battery model (KiBaM) — plus
// profile statistics and a lifetime-comparison harness used to reproduce
// the paper's Figure 1 motivation.
package power

import (
	"errors"
	"fmt"
	"math"
)

// Stats summarizes a per-cycle power profile.
type Stats struct {
	// Peak is the maximum per-cycle power.
	Peak float64
	// Mean is the average per-cycle power over the profile length.
	Mean float64
	// Variance is the population variance of the per-cycle power.
	Variance float64
	// Energy is the total energy (sum over cycles).
	Energy float64
	// SpikeCycles counts cycles drawing more than twice the mean.
	SpikeCycles int
	// Cycles is the profile length.
	Cycles int
}

// Analyze computes profile statistics. An empty profile yields zero stats.
func Analyze(profile []float64) Stats {
	s := Stats{Cycles: len(profile)}
	if len(profile) == 0 {
		return s
	}
	for _, p := range profile {
		s.Energy += p
		if p > s.Peak {
			s.Peak = p
		}
	}
	s.Mean = s.Energy / float64(len(profile))
	for _, p := range profile {
		d := p - s.Mean
		s.Variance += d * d
		if p > 2*s.Mean {
			s.SpikeCycles++
		}
	}
	s.Variance /= float64(len(profile))
	return s
}

// Battery simulates discharge under a repeated power profile and reports
// how long it lasts. Implementations interpret profile values as the
// current drawn in each cycle (the paper's power values at constant
// supply voltage are proportional to current).
type Battery interface {
	// Lifetime returns the number of whole profile periods the battery
	// sustains when the profile repeats back to back, and the total
	// number of cycles survived (including a partial final period).
	// maxPeriods bounds the simulation.
	Lifetime(profile []float64, maxPeriods int) (periods int, cycles int)
	// Model names the battery model ("peukert", "kibam"), so results
	// derived from a Battery value can report which model produced them.
	Model() string
}

// Peukert models the rate-capacity effect with Peukert's law: a constant
// current I drains capacity at rate I^k with k > 1, so high-current cycles
// cost disproportionately more charge than low-current ones.
type Peukert struct {
	// Capacity is the nominal charge in (current-unit x cycles) at 1 unit
	// of current.
	Capacity float64
	// Exponent is Peukert's constant k. It is dimensionless: each cycle
	// drawing current I (in the same current units Capacity is quoted at)
	// costs I^k charge units, so at I = 1 the battery lasts exactly
	// Capacity cycles regardless of k, and k only shapes how sharply the
	// cost grows away from the 1-unit reference current. 1.0 is an ideal
	// (energy-only) battery; real lead-acid cells are 1.1-1.3, low-cost
	// cells higher.
	Exponent float64
}

// NewPeukert validates and builds a Peukert battery.
func NewPeukert(capacity, exponent float64) (*Peukert, error) {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("power: peukert capacity %v must be positive", capacity)
	}
	if exponent < 1 || exponent > 3 {
		return nil, fmt.Errorf("power: peukert exponent %v out of [1,3]", exponent)
	}
	return &Peukert{Capacity: capacity, Exponent: exponent}, nil
}

// Model implements Battery.
func (b *Peukert) Model() string { return "peukert" }

// Lifetime implements Battery.
func (b *Peukert) Lifetime(profile []float64, maxPeriods int) (int, int) {
	if len(profile) == 0 || maxPeriods <= 0 {
		return 0, 0
	}
	charge := b.Capacity
	cycles := 0
	for period := 0; period < maxPeriods; period++ {
		for _, p := range profile {
			cost := math.Pow(p, b.Exponent)
			if cost > charge {
				return period, cycles
			}
			charge -= cost
			cycles++
		}
	}
	return maxPeriods, cycles
}

// KiBaM is the kinetic battery model: charge is split between an
// available well (directly usable) and a bound well that replenishes the
// available well at a rate proportional to the head difference. High
// current drains the available well faster than the bound charge can
// follow, so spiky profiles hit the cutoff earlier — the rate-capacity
// effect — while idle periods let the battery recover.
type KiBaM struct {
	// CapacityAvailable and CapacityBound are the initial well charges;
	// the usual formulation uses a capacity split c in (0,1) with
	// available = c*C and bound = (1-c)*C.
	CapacityAvailable float64
	CapacityBound     float64
	// Rate is the well-equalization rate constant k' per cycle (0,1].
	Rate float64
}

// NewKiBaM builds a KiBaM battery from total capacity, capacity split c
// (fraction immediately available) and rate constant k per cycle.
func NewKiBaM(capacity, c, k float64) (*KiBaM, error) {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("power: kibam capacity %v must be positive", capacity)
	}
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("power: kibam split %v out of (0,1)", c)
	}
	if k <= 0 || k > 1 {
		return nil, fmt.Errorf("power: kibam rate %v out of (0,1]", k)
	}
	return &KiBaM{CapacityAvailable: c * capacity, CapacityBound: (1 - c) * capacity, Rate: k}, nil
}

// Model implements Battery.
func (b *KiBaM) Model() string { return "kibam" }

// Lifetime implements Battery: per cycle, the profile current is drawn
// from the available well, then the wells equalize by Rate times the
// normalized head difference. The battery dies when a cycle's demand
// exceeds the available charge.
func (b *KiBaM) Lifetime(profile []float64, maxPeriods int) (int, int) {
	if len(profile) == 0 || maxPeriods <= 0 {
		return 0, 0
	}
	avail, bound := b.CapacityAvailable, b.CapacityBound
	c := b.CapacityAvailable / (b.CapacityAvailable + b.CapacityBound)
	cycles := 0
	for period := 0; period < maxPeriods; period++ {
		for _, p := range profile {
			if p > avail {
				return period, cycles
			}
			avail -= p
			// Well equalization toward equal normalized heads
			// h1 = avail/c, h2 = bound/(1-c).
			h1 := avail / c
			h2 := bound / (1 - c)
			flow := b.Rate * (h2 - h1) * c * (1 - c)
			avail += flow
			bound -= flow
			if bound < 0 {
				avail += bound
				bound = 0
			}
			cycles++
		}
	}
	return maxPeriods, cycles
}

// Comparison reports the lifetime of two profiles on the same battery.
type Comparison struct {
	// Model names the battery model that produced the lifetimes
	// ("peukert" or "kibam"); before it was recorded here, a sweep over
	// several models could no longer tell its own results apart.
	Model string
	// PeriodsA and PeriodsB are whole profile repetitions sustained.
	PeriodsA, PeriodsB int
	// CyclesA and CyclesB are total cycles survived.
	CyclesA, CyclesB int
}

// ExtensionPercent returns how much longer profile B lasts than profile A
// in percent, measured in whole profile periods — each period is one
// execution of the workload, so this is the battery-lifetime extension for
// equal work. (Comparing raw cycles would reward a longer profile even on
// an ideal battery.) Returns 0 when A's lifetime is zero periods.
func (c Comparison) ExtensionPercent() float64 {
	if c.PeriodsA == 0 {
		return 0
	}
	return 100 * float64(c.PeriodsB-c.PeriodsA) / float64(c.PeriodsA)
}

// ErrEmptyProfile is returned by Compare for empty inputs.
var ErrEmptyProfile = errors.New("power: empty profile")

// Compare runs both profiles on the battery and reports lifetimes. Use it
// with an unconstrained (spiky) schedule profile as A and the
// power-constrained (capped) profile as B to quantify the motivation of
// the paper's Figure 1.
func Compare(b Battery, profileA, profileB []float64, maxPeriods int) (Comparison, error) {
	if len(profileA) == 0 || len(profileB) == 0 {
		return Comparison{}, ErrEmptyProfile
	}
	pa, ca := b.Lifetime(profileA, maxPeriods)
	pb, cb := b.Lifetime(profileB, maxPeriods)
	return Comparison{Model: b.Model(), PeriodsA: pa, PeriodsB: pb, CyclesA: ca, CyclesB: cb}, nil
}
