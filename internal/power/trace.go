package power

import "math"

// TracePoint is one cycle of a battery discharge trace.
type TracePoint struct {
	// Cycle is the absolute cycle index.
	Cycle int
	// Demand is the current drawn this cycle.
	Demand float64
	// Available is the charge in the available well after the cycle
	// (for Peukert, the remaining capacity).
	Available float64
	// Bound is the charge in the bound well after the cycle (zero for
	// Peukert).
	Bound float64
	// Alive reports whether the battery sustained this cycle.
	Alive bool
}

// Tracer is implemented by batteries that can expose their per-cycle
// internal state, for plotting state-of-charge curves.
type Tracer interface {
	// Trace runs the repeated profile for at most maxCycles cycles (or
	// until the battery dies) and returns one point per simulated cycle;
	// the final point of a dying battery has Alive=false.
	Trace(profile []float64, maxCycles int) []TracePoint
}

// Trace implements Tracer for the kinetic battery model.
func (b *KiBaM) Trace(profile []float64, maxCycles int) []TracePoint {
	if len(profile) == 0 || maxCycles <= 0 {
		return nil
	}
	avail, bound := b.CapacityAvailable, b.CapacityBound
	c := b.CapacityAvailable / (b.CapacityAvailable + b.CapacityBound)
	var out []TracePoint
	for cycle := 0; cycle < maxCycles; cycle++ {
		p := profile[cycle%len(profile)]
		if p > avail {
			out = append(out, TracePoint{Cycle: cycle, Demand: p, Available: avail, Bound: bound, Alive: false})
			return out
		}
		avail -= p
		h1 := avail / c
		h2 := bound / (1 - c)
		flow := b.Rate * (h2 - h1) * c * (1 - c)
		avail += flow
		bound -= flow
		if bound < 0 {
			avail += bound
			bound = 0
		}
		out = append(out, TracePoint{Cycle: cycle, Demand: p, Available: avail, Bound: bound, Alive: true})
	}
	return out
}

// Trace implements Tracer for the Peukert battery.
func (b *Peukert) Trace(profile []float64, maxCycles int) []TracePoint {
	if len(profile) == 0 || maxCycles <= 0 {
		return nil
	}
	charge := b.Capacity
	var out []TracePoint
	for cycle := 0; cycle < maxCycles; cycle++ {
		p := profile[cycle%len(profile)]
		cost := math.Pow(p, b.Exponent)
		if cost > charge {
			out = append(out, TracePoint{Cycle: cycle, Demand: p, Available: charge, Alive: false})
			return out
		}
		charge -= cost
		out = append(out, TracePoint{Cycle: cycle, Demand: p, Available: charge, Alive: true})
	}
	return out
}
