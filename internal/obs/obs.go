// Package obs is the observability substrate of the synthesis service: a
// small dependency-free metrics registry holding counters, gauges and
// histograms, exported in the Prometheus text exposition format. It exists
// so the server, cache and runner layers can surface request latency,
// queue depth, cache effectiveness and engine work counters without
// pulling a client library into the module.
//
// All metric types are safe for concurrent use. The registry renders
// metrics in sorted name order, so /metrics output is deterministic for a
// fixed set of values — the property the server tests pin.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is a programming error; negative deltas are ignored to
// keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a cumulative-bucket latency/size distribution.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []int64   // len(bounds)+1, last is the +Inf bucket
	sum    float64
	count  int64
}

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond cache hits to multi-second surface explorations.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// RatioBuckets are buckets for relative-improvement observations in
// [0, 1) — e.g. the portfolio's incumbent gap over its baseline, where 0
// means "matched the single pass" and 0.2 means 20% less area.
var RatioBuckets = []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5}

// CountBuckets are buckets for small-integer count observations — e.g.
// the number of non-dominated points a Pareto exploration returns.
var CountBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the bucket counts, interpolating linearly inside
// the bucket the quantile lands in — the same estimate Prometheus's
// histogram_quantile computes. The load-test report uses it for p50/p99
// summaries. Returns 0 with no observations; a quantile landing in the
// +Inf bucket reports the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	cum := int64(0)
	for i, c := range h.counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: no finite upper bound to interpolate toward.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is one registered metric instance.
type metric struct {
	name   string // base name without labels
	labels string // rendered {k="v",...} or ""
	typ    string // counter | gauge | histogram
	help   string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // gauge-func / counter-func collector
}

func (m *metric) id() string { return m.name + m.labels }

// Registry holds named metrics and renders them as Prometheus text.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// register returns the existing metric under (name, labels) or installs m.
// Re-registering a name with a different type panics: that is a wiring bug.
func (r *Registry) register(name string, labels []Label, typ, help string, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := name + renderLabels(labels)
	if m, ok := r.metrics[id]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", id, typ, m.typ))
		}
		return m
	}
	m := mk()
	m.name, m.labels, m.typ, m.help = name, renderLabels(labels), typ, help
	r.metrics[id] = m
	return m
}

// Counter returns the counter registered under name and labels, creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, labels, "counter", help, func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, labels, "gauge", help, func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// Histogram returns the histogram registered under name and labels,
// creating it with the given bucket bounds on first use (nil bounds use
// DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, labels, "histogram", help, func() *metric {
		return &metric{hist: newHistogram(bounds)}
	}).hist
}

// GaugeFunc registers a pull-time collector: fn is evaluated at every
// WriteText call. Use it for levels owned by another subsystem (cache
// size, queue depth) without copying them on every update.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, labels, "gauge", help, func() *metric {
		return &metric{fn: fn}
	})
}

// CounterFunc registers a pull-time collector rendered as a counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, labels, "counter", help, func() *metric {
		return &metric{fn: fn}
	})
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, grouped by base name (one HELP/TYPE header per name)
// and sorted for deterministic output.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].id() < ms[j].id() })

	lastName := ""
	for _, m := range ms {
		if m.name != lastName {
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ); err != nil {
				return err
			}
			lastName = m.name
		}
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.gauge.Value())
		case m.fn != nil:
			_, err = fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels, formatFloat(m.fn()))
		case m.hist != nil:
			err = m.hist.write(w, m.name, m.labels)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// write renders the histogram's cumulative buckets, sum and count.
func (h *Histogram) write(w io.Writer, name, labels string) error {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]int64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()

	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", le)
	}
	cum := int64(0)
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(formatFloat(b)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
	return err
}

// Handler returns an http.Handler serving the registry as text/plain.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
