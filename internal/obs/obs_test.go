package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pchls_events_total", "events")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("pchls_level", "level")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Re-registration returns the same instance.
	if r.Counter("pchls_events_total", "events") != c {
		t.Fatal("counter re-registration minted a new instance")
	}
	if r.Gauge("pchls_level", "level") != g {
		t.Fatal("gauge re-registration minted a new instance")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pchls_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`pchls_seconds_bucket{le="0.1"} 1`,
		`pchls_seconds_bucket{le="1"} 3`,
		`pchls_seconds_bucket{le="10"} 4`,
		`pchls_seconds_bucket{le="+Inf"} 5`,
		`pchls_seconds_sum 56.05`,
		`pchls_seconds_count 5`,
		"# TYPE pchls_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryValueIsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1})
	h.Observe(1) // exactly on the bound: belongs in the le="1" bucket
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `h_bucket{le="1"} 1`) {
		t.Fatalf("boundary observation not in its bucket:\n%s", sb.String())
	}
}

func TestLabelsRenderSortedAndDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", Label{"path", "/v1/synthesize"}, Label{"code", "200"}).Inc()
	r.Counter("req_total", "requests", Label{"code", "400"}, Label{"path", "/v1/synthesize"}).Add(2)
	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteText is not deterministic")
	}
	out := a.String()
	if !strings.Contains(out, `req_total{code="200",path="/v1/synthesize"} 1`) {
		t.Fatalf("missing sorted-label counter line:\n%s", out)
	}
	if !strings.Contains(out, `req_total{code="400",path="/v1/synthesize"} 2`) {
		t.Fatalf("missing second label set:\n%s", out)
	}
	if strings.Count(out, "# TYPE req_total counter") != 1 {
		t.Fatalf("want exactly one TYPE header per base name:\n%s", out)
	}
}

func TestGaugeFuncAndHandler(t *testing.T) {
	r := NewRegistry()
	level := 3.5
	r.GaugeFunc("cache_size", "entries", func() float64 { return level })
	r.CounterFunc("cache_hits_total", "hits", func() float64 { return 42 })
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "cache_size 3.5") || !strings.Contains(body, "cache_hits_total 42") {
		t.Fatalf("handler output missing func metrics:\n%s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestConcurrentUseUnderRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "", nil).Observe(float64(i) / 100)
			}
		}()
	}
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.Reset()
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := r.Counter("c", "").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
}
