package pchls

import (
	"strings"
	"testing"
)

func TestFacadePipeline(t *testing.T) {
	g := MustBenchmark("hal")
	lib := Table1()
	bind := UniformFastest(lib)

	minII, err := PipelineMinII(g, bind, 20)
	if err != nil || minII != 6 {
		t.Fatalf("PipelineMinII = %d, %v; want 6", minII, err)
	}
	r, err := PipelineSchedule(g, bind, lib, 8, 24, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.II != 8 || r.PeakPower() > 20 {
		t.Fatalf("II %d peak %.2f", r.II, r.PeakPower())
	}
	results, err := PipelineExplore(g, bind, lib, 12, 24, 20)
	if err != nil || len(results) == 0 {
		t.Fatalf("explore: %v (%d results)", err, len(results))
	}
	if results[0].II < minII {
		t.Fatalf("first feasible II %d below the energy bound %d", results[0].II, minII)
	}
}

func TestFacadeSurface(t *testing.T) {
	s, err := ExploreSurface(MustBenchmark("hal"), Table1(), SurfaceConfig{
		Deadlines:  []int{10, 17},
		Powers:     []float64{8, 20},
		SinglePass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("%d points", len(s.Points))
	}
	if len(s.ParetoFront()) == 0 {
		t.Fatal("empty front")
	}
	if !strings.Contains(s.Table(), "T\\P<") {
		t.Fatal("table header missing")
	}
}

func TestFacadeBatterySweep(t *testing.T) {
	c, err := BatterySweep(MustBenchmark("hal"), Table1(), []float64{10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if best, ok := c.BestExtension(); !ok || best.KibamExt <= 0 {
		t.Fatalf("best = %+v, %v", best, ok)
	}
}

func TestFacadeDesignHTMLAndSweepHTML(t *testing.T) {
	d, err := Synthesize(MustBenchmark("hal"), Table1(), Constraints{Deadline: 17, PowerMax: 8}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if html := DesignHTML(d); !strings.Contains(html, "design report") {
		t.Fatal("design html malformed")
	}
	c, err := Sweep(MustBenchmark("hal"), Table1(), 17, SweepConfig{PowerMin: 8, PowerMax: 16, Step: 4, SinglePass: true})
	if err != nil {
		t.Fatal(err)
	}
	if html := SweepHTML([]Curve{c}); !strings.Contains(html, "exploration") {
		t.Fatal("sweep html malformed")
	}
}

func TestFacadeEmitTestbench(t *testing.T) {
	d, err := Synthesize(MustBenchmark("hal"), Table1(), Constraints{Deadline: 17, PowerMax: 8}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := EmitTestbench(d, halInputs())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb, "module hal_tb;") {
		t.Fatal("testbench malformed")
	}
	raw, err := d.JSON()
	if err != nil || !strings.Contains(string(raw), `"graph": "hal"`) {
		t.Fatalf("json: %v", err)
	}
}
