package pchls_test

import (
	"errors"
	"os"
	"runtime"
	"strconv"
	"testing"

	"pchls"
	"pchls/internal/gen"
)

// propertyDesigns returns how many random designs the sweep pushes
// through synthesize -> verify. The default is 10000; -short drops to
// 1000 (the CI budget), and PCHLS_PROPERTY_DESIGNS overrides both for
// soak runs or quick local iteration.
func propertyDesigns(t *testing.T) int {
	if s := os.Getenv("PCHLS_PROPERTY_DESIGNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("PCHLS_PROPERTY_DESIGNS=%q: want a positive integer", s)
		}
		return n
	}
	if testing.Short() {
		return 1000
	}
	return 10000
}

// propertyInstance derives the seed'th random synthesis problem. Every
// generator knob cycles on a different modulus so the sweep covers the
// cross product: graph size and shape, op mix, library richness,
// multi-function ALUs, and constraint tightness (the instance's own
// slack/power factors vary with the seed inside NewInstance).
func propertyInstance(seed int64) gen.Instance {
	return gen.NewInstance(seed, gen.InstanceConfig{
		Graph: gen.GraphConfig{
			Nodes:       4 + int(seed%9),
			MaxWidth:    2 + int(seed%3),
			EdgeDensity: 0.3 + 0.15*float64(seed%5),
			MulFraction: 0.15 + 0.1*float64(seed%4),
			CmpFraction: 0.1,
		},
		Library: gen.LibraryConfig{
			ModulesPerOp: 1 + int(seed%3),
			DelayMax:     1 + int(seed%4),
			ALUChance:    float64(seed%2) * 0.5,
			// Two thirds of the instances carry voltage-scaling libraries
			// (2 or 3 operating points per computation module); seed%3==0
			// keeps the classic single-level coverage, with libraries
			// bit-identical to the pre-DVS sweep.
			Levels: 1 + int(seed%3),
		},
		// Include the over-tight regime: infeasible verdicts are part of
		// the property (they must be reported as ErrInfeasible, never as
		// an invalid design).
		SlackMin: 1.0, SlackMax: 2.5,
		PowerFactorMin: 1.0, PowerFactorMax: 4,
	})
}

// TestPropertySynthesizeVerify is the 10k-design sweep demanded by the
// verification layer's charter: every random instance the generator can
// produce either synthesizes into a design that passes the independent
// validator, or fails with an explicit infeasibility verdict. Any other
// outcome prints the seed, which reproduces the instance exactly
// (gen.NewInstance is a pure function of the seed).
func TestPropertySynthesizeVerify(t *testing.T) {
	total := propertyDesigns(t)
	shards := runtime.GOMAXPROCS(0)
	if shards > 8 {
		shards = 8
	}
	per := (total + shards - 1) / shards

	var synthesized, infeasible, fronts [8]int64 // per-shard, summed in cleanup
	for shard := 0; shard < shards; shard++ {
		shard := shard
		lo := int64(shard*per + 1)
		hi := int64((shard + 1) * per)
		if hi > int64(total) {
			hi = int64(total)
		}
		t.Run("shard"+strconv.Itoa(shard), func(t *testing.T) {
			t.Parallel()
			for seed := lo; seed <= hi; seed++ {
				inst := propertyInstance(seed)
				cons := pchls.Constraints{Deadline: inst.Deadline, PowerMax: inst.PowerMax}
				// The single-pass paper algorithm for every seed; every
				// 16th instance also runs the full portfolio so both entry
				// points stay under the validator.
				d, err := pchls.Synthesize(inst.Graph, inst.Library, cons, pchls.Config{Workers: 1})
				if err != nil {
					if !errors.Is(err, pchls.ErrInfeasible) {
						t.Errorf("seed %d (T=%d, P<=%g): synthesize failed outside the infeasibility contract: %v",
							seed, inst.Deadline, inst.PowerMax, err)
						continue
					}
					infeasible[shard]++
					continue
				}
				synthesized[shard]++
				if verr := pchls.Verify(d); verr != nil {
					t.Errorf("seed %d (T=%d, P<=%g): engine design rejected by the independent validator: %v",
						seed, inst.Deadline, inst.PowerMax, verr)
				}
				if seed%16 == 0 {
					db, berr := pchls.SynthesizeBest(inst.Graph, inst.Library, cons, pchls.Config{Workers: 1})
					if berr != nil {
						t.Errorf("seed %d: portfolio failed where single-pass succeeded: %v", seed, berr)
						continue
					}
					if verr := pchls.Verify(db); verr != nil {
						t.Errorf("seed %d: portfolio design rejected by the independent validator: %v", seed, verr)
					}
				}
				// Every 32nd instance also sweeps a small Pareto grid so the
				// multi-objective entry point stays under the validator: every
				// front point's design must pass verify.Check, DVS or not.
				if seed%32 == 0 {
					lo := inst.Deadline - 1
					if lo < 1 {
						lo = 1
					}
					front, ferr := pchls.SynthesizePareto(inst.Graph, inst.Library, pchls.ParetoConfig{
						Deadlines:  []int{lo, inst.Deadline},
						Powers:     []float64{inst.PowerMax},
						SinglePass: true,
						Workers:    1,
						Config:     pchls.Config{Workers: 1},
					})
					if ferr != nil {
						t.Errorf("seed %d: pareto sweep failed: %v", seed, ferr)
						continue
					}
					for i, p := range front.Points {
						if verr := pchls.Verify(p.Design); verr != nil {
							t.Errorf("seed %d: pareto front point %d (T=%d) rejected by the independent validator: %v",
								seed, i, p.Deadline, verr)
						}
					}
					fronts[shard] += int64(len(front.Points))
				}
			}
		})
	}
	t.Cleanup(func() {
		var s, i, f int64
		for shard := 0; shard < shards; shard++ {
			s += synthesized[shard]
			i += infeasible[shard]
			f += fronts[shard]
		}
		t.Logf("%d instances: %d designs verified, %d infeasible verdicts, %d pareto front points verified", total, s, i, f)
	})
}
