#!/bin/sh
# Smoke test for cmd/pchls-server: build it, start it on a private port,
# probe /healthz, synthesize hal twice (the warm response must byte-match
# the cold one), and confirm /metrics reports the cache hit. Exits
# non-zero on any failure. Used by `make smoke` and the CI server job.
set -eu

GO=${GO:-go}
ADDR=${SMOKE_ADDR:-127.0.0.1:18080}
BASE="http://$ADDR"
TMP=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

$GO build -o "$TMP/pchls-server" ./cmd/pchls-server
"$TMP/pchls-server" -addr "$ADDR" &
SERVER_PID=$!

# Wait for the listener (up to ~10s).
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "smoke: server never became healthy on $ADDR" >&2
        exit 1
    fi
    sleep 0.1
done
echo "smoke: /healthz ok"

BODY='{"benchmark":"hal","deadline":17,"power_max":20}'
curl -sf -X POST -d "$BODY" "$BASE/v1/synthesize" -o "$TMP/cold.json" \
    -D "$TMP/cold.hdr"
grep -qi '^X-Pchls-Cache: miss' "$TMP/cold.hdr" || {
    echo "smoke: cold request was not a cache miss" >&2
    cat "$TMP/cold.hdr" >&2
    exit 1
}
echo "smoke: cold synthesize ok ($(wc -c <"$TMP/cold.json") bytes)"

curl -sf -X POST -d "$BODY" "$BASE/v1/synthesize" -o "$TMP/warm.json" \
    -D "$TMP/warm.hdr"
grep -qi '^X-Pchls-Cache: hit' "$TMP/warm.hdr" || {
    echo "smoke: warm request was not a cache hit" >&2
    cat "$TMP/warm.hdr" >&2
    exit 1
}
grep -qi '^X-Pchls-Scheduler-Runs: 0' "$TMP/warm.hdr" || {
    echo "smoke: warm request reports scheduler runs" >&2
    exit 1
}
cmp -s "$TMP/cold.json" "$TMP/warm.json" || {
    echo "smoke: warm response differs from cold response" >&2
    exit 1
}
echo "smoke: warm synthesize ok (byte-identical, zero scheduler runs)"

curl -sf "$BASE/v1/benchmarks" >/dev/null
echo "smoke: /v1/benchmarks ok"

# Batch: two items through one request; -f fails the script on non-2xx.
# The first item repeats the synthesize above, so its base64 body must
# decode to exactly the standalone response bytes.
BATCH='{"requests":[{"synthesize":{"benchmark":"hal","deadline":17,"power_max":20}},{"sweep":{"benchmark":"hal","deadline":17,"power_min":5,"power_max":20,"step":5,"single_pass":true}}]}'
curl -sf -X POST -d "$BATCH" "$BASE/v1/batch" -o "$TMP/batch.json"
grep -q '"status": 200' "$TMP/batch.json" || {
    echo "smoke: batch items did not all succeed" >&2
    cat "$TMP/batch.json" >&2
    exit 1
}
grep -o '"body": "[^"]*"' "$TMP/batch.json" | head -1 | cut -d'"' -f4 \
    | base64 -d >"$TMP/batch-item0.json"
cmp -s "$TMP/batch-item0.json" "$TMP/cold.json" || {
    echo "smoke: batch item body differs from the standalone response" >&2
    exit 1
}
echo "smoke: /v1/batch ok (item body byte-identical to standalone)"

# Two hits exactly: the warm synthesize plus batch item 0's repeat.
curl -sf "$BASE/metrics" -o "$TMP/metrics"
grep -q '^pchls_cache_hits_total 2$' "$TMP/metrics" || {
    echo "smoke: /metrics does not report the two cache hits" >&2
    grep '^pchls_cache' "$TMP/metrics" >&2 || true
    exit 1
}
grep -q '^pchls_http_request_seconds_count' "$TMP/metrics" || {
    echo "smoke: /metrics missing latency histogram" >&2
    exit 1
}
echo "smoke: /metrics ok"

kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
echo "smoke: all checks passed"
