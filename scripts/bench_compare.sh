#!/usr/bin/env bash
# Benchmark regression gate: re-runs the two checked-in benchmark suites
# and diffs ns/op and allocs/op against results/BENCH_*.json via
# scripts/benchcompare. Exits nonzero when any metric regresses more than
# BENCH_TOLERANCE (fractional, default 0.20).
#
# Usage: scripts/bench_compare.sh   (or: make bench-compare)
set -euo pipefail
cd "$(dirname "$0")/.."

TOL="${BENCH_TOLERANCE:-0.20}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

# -count 2: the comparer keeps the last occurrence, so the first pass is
# warmup — the very first sub-benchmark of a fresh process is otherwise
# up to ~2x slower than steady state and trips the ns/op gate spuriously.
echo "== BenchmarkSynthesize (-benchtime 20x -benchmem -count 2)"
go test -run '^$' -bench 'BenchmarkSynthesize$' -benchtime 20x -benchmem -count 2 . | tee "$OUT/synth.txt"

echo "== BenchmarkServerSynthesize (-benchtime 50x -benchmem -count 2)"
go test -run '^$' -bench 'BenchmarkServerSynthesize' -benchtime 50x -benchmem -count 2 ./internal/server | tee "$OUT/server.txt"

echo "== BenchmarkAnytimePortfolio (-benchtime 10x -benchmem -count 2)"
go test -run '^$' -bench 'BenchmarkAnytimePortfolio' -benchtime 10x -benchmem -count 2 . | tee "$OUT/portfolio.txt"

echo "== compare vs results/BENCH_*.json (tolerance ${TOL})"
go run ./scripts/benchcompare \
    -synth results/BENCH_synthesize.json -synthout "$OUT/synth.txt" \
    -server results/BENCH_server.json -serverout "$OUT/server.txt" \
    -portfolio results/BENCH_portfolio.json -portfolioout "$OUT/portfolio.txt" \
    -tolerance "$TOL"
