#!/usr/bin/env bash
# Benchmark regression gate: re-runs the checked-in benchmark suites and
# diffs ns/op and allocs/op against results/BENCH_*.json via
# scripts/benchcompare. Exits nonzero when any metric regresses more than
# BENCH_TOLERANCE (fractional, default 0.20).
#
# Lanes (BENCH_LANES, space-separated, default all): synth server
# portfolio pareto scaling cluster. The scaling lane gates the n=100/300 tiers of
# BenchmarkScaling by default; with PCHLS_SCALING_FULL=1 it also runs
# the n=1000 tiers — including two ~20-minute legacy passes — and enforces
# the legacy-over-scale speedup floors (make bench-scaling).
#
# Usage: scripts/bench_compare.sh   (or: make bench-compare / bench-scaling)
set -euo pipefail
cd "$(dirname "$0")/.."

TOL="${BENCH_TOLERANCE:-0.20}"
LANES="${BENCH_LANES:-synth server portfolio pareto scaling cluster}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

has_lane() { [[ " $LANES " == *" $1 "* ]]; }
ARGS=(-tolerance "$TOL")

# -count 2: the comparer keeps the last occurrence, so the first pass is
# warmup — the very first sub-benchmark of a fresh process is otherwise
# up to ~2x slower than steady state and trips the ns/op gate spuriously.
if has_lane synth; then
    echo "== BenchmarkSynthesize (-benchtime 20x -benchmem -count 2)"
    go test -run '^$' -bench 'BenchmarkSynthesize$' -benchtime 20x -benchmem -count 2 . | tee "$OUT/synth.txt"
    ARGS+=(-synth results/BENCH_synthesize.json -synthout "$OUT/synth.txt")
fi

if has_lane server; then
    echo "== BenchmarkServerSynthesize (-benchtime 50x -benchmem -count 2)"
    go test -run '^$' -bench 'BenchmarkServerSynthesize' -benchtime 50x -benchmem -count 2 ./internal/server | tee "$OUT/server.txt"
    ARGS+=(-server results/BENCH_server.json -serverout "$OUT/server.txt")
fi

if has_lane portfolio; then
    echo "== BenchmarkAnytimePortfolio (-benchtime 10x -benchmem -count 2)"
    go test -run '^$' -bench 'BenchmarkAnytimePortfolio' -benchtime 10x -benchmem -count 2 . | tee "$OUT/portfolio.txt"
    ARGS+=(-portfolio results/BENCH_portfolio.json -portfolioout "$OUT/portfolio.txt")
fi

if has_lane pareto; then
    echo "== BenchmarkPareto (-benchtime 20x -benchmem -count 2)"
    go test -run '^$' -bench 'BenchmarkPareto$' -benchtime 20x -benchmem -count 2 ./internal/explore | tee "$OUT/pareto.txt"
    ARGS+=(-pareto results/BENCH_pareto.json -paretoout "$OUT/pareto.txt")
fi

if has_lane scaling; then
    # Go's -bench regex matches each /-element as an unanchored substring,
    # so the tier names must be ^...$-anchored ("layered-n100" would
    # otherwise also select layered-n1000).
    echo "== BenchmarkScaling n100/n300 + connected n1000 tiers (-benchtime 1x -benchmem -count 2)"
    go test -run '^$' -bench 'BenchmarkScaling/^(layered-n100|layered-n300|blocks-n300|layered-n1000-connected|mixed-n1000-connected)$' \
        -benchtime 1x -benchmem -count 2 -timeout 30m . | tee "$OUT/scaling.txt"
    SCALING_TIERS="layered-n100,layered-n300,blocks-n300,layered-n1000-connected,mixed-n1000-connected"
    if [[ "${PCHLS_SCALING_FULL:-}" == "1" ]]; then
        echo "== BenchmarkScaling n1000 tiers incl. exhaustive legacy (-benchtime 1x; each legacy pass takes ~20 min)"
        PCHLS_SCALING_FULL=1 go test -run '^$' -bench 'BenchmarkScaling/^(layered-n1000|blocks-n1000)$' \
            -benchtime 1x -benchmem -timeout 90m . | tee -a "$OUT/scaling.txt"
        SCALING_TIERS="" # empty = gate every tier in the baseline
    fi
    ARGS+=(-scaling results/BENCH_scaling.json -scalingout "$OUT/scaling.txt" -scalingtiers "$SCALING_TIERS")
fi

if has_lane cluster; then
    # Service time is simulated (fixed per-point sleeps), so this lane's
    # ns/op is stable without -benchmem or a large -benchtime.
    echo "== BenchmarkCluster (-benchtime 5x -count 2)"
    go test -run '^$' -bench 'BenchmarkCluster$' -benchtime 5x -count 2 ./internal/server | tee "$OUT/cluster.txt"
    ARGS+=(-cluster results/BENCH_cluster.json -clusterout "$OUT/cluster.txt")
fi

echo "== compare vs results/BENCH_*.json (tolerance ${TOL})"
go run ./scripts/benchcompare "${ARGS[@]}"
