#!/bin/sh
# Cluster smoke test: build pchls-coordinator, pchls-server and the pchls
# CLI, boot a coordinator plus two workers (the workers join via POST
# /cluster/register and form a cache-peer ring), run a sharded sweep and
# two sharded surfaces through the coordinator, and require every
# response to be byte-identical to a single worker computing the same
# request locally — and the synthesize response to be byte-identical to
# the CLI's -json output. Also checks the cluster and peer-fill metrics.
# Exits non-zero on any failure. Used by `make cluster-smoke` and CI.
set -eu

GO=${GO:-go}
COORD_ADDR=${CLUSTER_SMOKE_COORD:-127.0.0.1:18090}
W1_ADDR=${CLUSTER_SMOKE_W1:-127.0.0.1:18091}
W2_ADDR=${CLUSTER_SMOKE_W2:-127.0.0.1:18092}
COORD="http://$COORD_ADDR"
W1="http://$W1_ADDR"
W2="http://$W2_ADDR"
TMP=$(mktemp -d)
trap 'kill "$COORD_PID" "$W1_PID" "$W2_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

$GO build -o "$TMP/pchls-coordinator" ./cmd/pchls-coordinator
$GO build -o "$TMP/pchls-server" ./cmd/pchls-server
$GO build -o "$TMP/pchls" ./cmd/pchls

"$TMP/pchls-coordinator" -addr "$COORD_ADDR" &
COORD_PID=$!

wait_healthy() {
    i=0
    until curl -sf "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "cluster-smoke: $1 never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_healthy "$COORD"

# Workers join the coordinator and carry a static peer ring; -join also
# exercises POST /cluster/register.
"$TMP/pchls-server" -addr "$W1_ADDR" -self "$W1" -peers "$W1,$W2" -join "$COORD" &
W1_PID=$!
wait_healthy "$W1"
"$TMP/pchls-server" -addr "$W2_ADDR" -self "$W2" -peers "$W1,$W2" -join "$COORD" &
W2_PID=$!
wait_healthy "$W2"
echo "cluster-smoke: coordinator + 2 workers healthy"

curl -sf "$COORD/metrics" -o "$TMP/metrics0"
grep -q '^pchls_cluster_workers 2$' "$TMP/metrics0" || {
    echo "cluster-smoke: coordinator does not report 2 registered workers" >&2
    grep '^pchls_cluster' "$TMP/metrics0" >&2 || true
    exit 1
}
echo "cluster-smoke: both workers registered"

# Sharded sweep through the coordinator vs the same sweep computed
# locally by one worker: byte-identical or the distribution layer leaks.
SWEEP='{"benchmark":"hal","deadline":17,"power_min":5,"power_max":50,"step":5}'
curl -sf -X POST -d "$SWEEP" "$COORD/v1/sweep" -o "$TMP/sweep-coord.json"
curl -sf -X POST -d "$SWEEP" "$W1/v1/sweep" -o "$TMP/sweep-w1.json"
cmp -s "$TMP/sweep-coord.json" "$TMP/sweep-w1.json" || {
    echo "cluster-smoke: sharded sweep differs from local sweep" >&2
    exit 1
}
echo "cluster-smoke: sharded sweep byte-identical ($(wc -c <"$TMP/sweep-coord.json") bytes)"

for bm_body in \
    'hal:{"benchmark":"hal","deadlines":[10,17],"powers":[20,40]}' \
    'diffeq2:{"benchmark":"diffeq2","deadlines":[20,30],"powers":[10,15],"single_pass":true}'; do
    bm=${bm_body%%:*}
    body=${bm_body#*:}
    curl -sf -X POST -d "$body" "$COORD/v1/surface" -o "$TMP/surface-$bm-coord.json"
    curl -sf -X POST -d "$body" "$W2/v1/surface" -o "$TMP/surface-$bm-w2.json"
    cmp -s "$TMP/surface-$bm-coord.json" "$TMP/surface-$bm-w2.json" || {
        echo "cluster-smoke: sharded $bm surface differs from local surface" >&2
        exit 1
    }
    echo "cluster-smoke: sharded $bm surface byte-identical"
done

# A coordinated synthesize must match the CLI's -json output exactly.
curl -sf -X POST -d '{"benchmark":"hal","deadline":17,"power_max":20}' \
    "$COORD/v1/synthesize" -o "$TMP/synth-coord.json"
"$TMP/pchls" -g hal -T 17 -P 20 -json "$TMP/synth-cli.json" >/dev/null
cmp -s "$TMP/synth-coord.json" "$TMP/synth-cli.json" || {
    echo "cluster-smoke: coordinated synthesize differs from CLI -json output" >&2
    exit 1
}
echo "cluster-smoke: synthesize byte-identical to the CLI"

# Batch through the coordinator; -f fails the script on non-2xx.
BATCH='{"requests":[{"synthesize":{"benchmark":"hal","deadline":17,"power_max":20}},{"surface":{"benchmark":"hal","deadlines":[10,17],"powers":[20,40]}}]}'
curl -sf -X POST -d "$BATCH" "$COORD/v1/batch" -o "$TMP/batch.json"
grep -q '"status": 200' "$TMP/batch.json" || {
    echo "cluster-smoke: batch items did not all succeed" >&2
    cat "$TMP/batch.json" >&2
    exit 1
}
echo "cluster-smoke: batch ok"

# Peer fill: the coordinator already routed this synthesize to the
# worker owning its key, so posting it directly to BOTH workers makes
# the non-owner's miss a guaranteed peer hit — whichever worker that is.
SYNTH='{"benchmark":"hal","deadline":17,"power_max":20}'
curl -sf -X POST -d "$SYNTH" "$W1/v1/synthesize" -o "$TMP/synth-w1.json"
curl -sf -X POST -d "$SYNTH" "$W2/v1/synthesize" -o "$TMP/synth-w2.json"
cmp -s "$TMP/synth-w1.json" "$TMP/synth-w2.json" || {
    echo "cluster-smoke: the two workers disagree on the same synthesize" >&2
    exit 1
}

# Metrics: the coordinator dispatched points; the direct posts above
# filled the non-owning worker's cache from its peer.
curl -sf "$COORD/metrics" -o "$TMP/metrics-coord"
grep -q '^pchls_cluster_points_total' "$TMP/metrics-coord" || {
    echo "cluster-smoke: coordinator missing cluster metrics" >&2
    exit 1
}
points=$(awk '/^pchls_cluster_points_total/ {print $2}' "$TMP/metrics-coord")
[ "$points" -ge 10 ] || {
    echo "cluster-smoke: coordinator dispatched only $points points" >&2
    exit 1
}
grep -q '^pchls_request_seconds_count' "$TMP/metrics-coord" || {
    echo "cluster-smoke: coordinator missing per-endpoint latency histogram" >&2
    exit 1
}
curl -sf "$W1/metrics" -o "$TMP/metrics-w1"
curl -sf "$W2/metrics" -o "$TMP/metrics-w2"
fills=$(awk '/^pchls_cache_peer_hits_total/ {s += $2} END {print s+0}' "$TMP/metrics-w1" "$TMP/metrics-w2")
[ "$fills" -ge 1 ] || {
    echo "cluster-smoke: no peer fills recorded across the workers" >&2
    grep '^pchls_cache_peer' "$TMP/metrics-w1" "$TMP/metrics-w2" >&2 || true
    exit 1
}
echo "cluster-smoke: metrics ok ($points points dispatched, $fills peer fills)"

kill "$COORD_PID" "$W1_PID" "$W2_PID"
wait "$COORD_PID" "$W1_PID" "$W2_PID" 2>/dev/null || true
echo "cluster-smoke: all checks passed"
