// Command loadtest hammers a pchls-server with thousands of concurrent
// requests and reports the latency distribution from an obs histogram
// (p50/p90/p99 via Quantile — the same estimator Prometheus uses). By
// default it boots an in-process daemon so `make loadtest` is
// self-contained; point -addr at a running server or coordinator to load
// an external deployment instead.
//
// The request mix cycles through a handful of synthesize keys. The cache
// is pre-warmed first (one sequential pass over the mix), so the
// sustained phase measures the serving path — routing, cache, metrics,
// admission — rather than engine throughput, which is what a
// 1000-concurrent burst actually stresses in production.
//
// Exit status 1 when any request fails or returns a non-2xx status.
//
// Usage:
//
//	go run ./scripts/loadtest -c 1000 -n 20000
//	go run ./scripts/loadtest -addr http://127.0.0.1:8080 -c 1000
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pchls/internal/obs"
	"pchls/internal/server"
)

// mix is the request set the load cycles through: a few distinct cache
// keys so the test exercises cache lookup under contention, not just one
// hot entry.
var mix = []string{
	`{"benchmark":"hal","deadline":17,"power_max":20}`,
	`{"benchmark":"hal","deadline":10,"power_max":40}`,
	`{"benchmark":"cosine","deadline":15,"power_max":30}`,
	`{"benchmark":"diffeq2","deadline":30,"power_max":15}`,
	`{"benchmark":"fir16","deadline":20,"power_max":25}`,
	`{"benchmark":"ar","deadline":25,"power_max":30}`,
}

func main() {
	var (
		addr    = flag.String("addr", "", "target base URL (empty: boot an in-process server)")
		conc    = flag.Int("c", 1000, "concurrent clients")
		total   = flag.Int("n", 20000, "total requests in the sustained phase")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	)
	flag.Parse()
	if *conc <= 0 || *total <= 0 {
		log.Fatal("loadtest: -c and -n must be positive")
	}

	base := *addr
	if base == "" {
		s := server.New(server.Config{Workers: 8})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("loadtest: %v", err)
		}
		go func() { _ = s.Serve(l) }()
		base = "http://" + l.Addr().String()
		fmt.Printf("loadtest: booted in-process server at %s\n", base)
	}
	base = strings.TrimRight(base, "/")

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *conc,
			MaxIdleConnsPerHost: *conc,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	post := func(body string) (int, error) {
		resp, err := client.Post(base+"/v1/synthesize", "application/json", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}

	// Warm pass: every key in the mix computes once, sequentially, so the
	// sustained phase measures serving throughput at full concurrency.
	for _, body := range mix {
		status, err := post(body)
		if err != nil {
			log.Fatalf("loadtest: warmup: %v", err)
		}
		if status/100 != 2 {
			log.Fatalf("loadtest: warmup returned %d for %s", status, body)
		}
	}
	fmt.Printf("loadtest: warmed %d keys, starting %d requests at concurrency %d\n", len(mix), *total, *conc)

	reg := obs.NewRegistry()
	hist := reg.Histogram("loadtest_request_seconds", "client-observed request latency", nil)
	var (
		next     atomic.Int64
		errs     atomic.Int64
		badCodes atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(*total) {
					return
				}
				t0 := time.Now()
				status, err := post(mix[i%int64(len(mix))])
				hist.Observe(time.Since(t0).Seconds())
				if err != nil {
					errs.Add(1)
					continue
				}
				if status/100 != 2 {
					badCodes.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	ms := func(q float64) float64 { return hist.Quantile(q) * 1000 }
	fmt.Printf("loadtest: %d requests in %s (%.0f req/s), %d transport errors, %d non-2xx\n",
		hist.Count(), elapsed.Round(time.Millisecond), float64(hist.Count())/elapsed.Seconds(),
		errs.Load(), badCodes.Load())
	fmt.Printf("loadtest: latency p50 %.2fms  p90 %.2fms  p99 %.2fms  mean %.2fms\n",
		ms(0.50), ms(0.90), ms(0.99), hist.Sum()/float64(hist.Count())*1000)
	if errs.Load() > 0 || badCodes.Load() > 0 {
		os.Exit(1)
	}
}
