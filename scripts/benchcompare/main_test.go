package main

import (
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pchls
BenchmarkSynthesize/hal/incremental-8         	      20	    250000 ns/op	     949 allocs/op
BenchmarkSynthesize/hal/incremental-8         	      20	    240000 ns/op	     949 allocs/op
BenchmarkAnytimePortfolio/hal-8               	      10	   5000000 ns/op	       842.0 area	   12345 allocs/op
PASS
ok  	pchls	1.234s
`

func parsed(t *testing.T) map[string]metrics {
	t.Helper()
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseBenchStripsSuffixAndKeepsLastCount(t *testing.T) {
	got := parsed(t)
	m, ok := got["BenchmarkSynthesize/hal/incremental"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped; parsed names: %v", keysOf(got))
	}
	// -count 2: the second (warmed-up) occurrence must win.
	if m.ns != 240000 {
		t.Fatalf("ns/op = %v, want the last occurrence 240000", m.ns)
	}
	if m.allocs != 949 {
		t.Fatalf("allocs/op = %v, want 949", m.allocs)
	}
	if _, ok := got["BenchmarkAnytimePortfolio/hal"]; !ok {
		t.Fatal("portfolio benchmark line not parsed")
	}
}

// TestMissingBenchmarkIsHardFailure pins the satellite fix: a benchmark
// present in the baseline JSON but absent from the fresh run must fail
// the gate, never pass silently.
func TestMissingBenchmarkIsHardFailure(t *testing.T) {
	got := parsed(t)
	var sb strings.Builder
	fails := 0
	compare(&sb, &fails, got, "BenchmarkSynthesize/hal/legacy", modeEntry{NsPerOp: 100, AllocsPerOp: 10}, 0.20)
	if fails != 1 {
		t.Fatalf("fails = %d, want 1; output:\n%s", fails, sb.String())
	}
	if !strings.Contains(sb.String(), "missing from benchmark output") {
		t.Fatalf("failure line does not name the missing benchmark:\n%s", sb.String())
	}
}

// TestVanishedMetricIsHardFailure: a metric recorded as positive in the
// baseline but zero in the fresh run (e.g. -benchmem dropped from the
// invocation) must fail, not report a -100% "improvement".
func TestVanishedMetricIsHardFailure(t *testing.T) {
	var sb strings.Builder
	fails := 0
	check(&sb, &fails, "BenchmarkSynthesize/hal/incremental", "allocs/op", 0, 949, 0.20)
	if fails != 1 {
		t.Fatalf("fails = %d, want 1; output:\n%s", fails, sb.String())
	}
	if !strings.Contains(sb.String(), "missing from fresh run") {
		t.Fatalf("failure line does not flag the vanished metric:\n%s", sb.String())
	}
}

// TestMetricAbsentFromBaselineIsSkipped: baselines that do not record a
// metric (base <= 0) are deliberately not gated on it.
func TestMetricAbsentFromBaselineIsSkipped(t *testing.T) {
	var sb strings.Builder
	fails := 0
	check(&sb, &fails, "BenchmarkSynthesize/hal/incremental", "allocs/op", 949, 0, 0.20)
	if fails != 0 || sb.Len() != 0 {
		t.Fatalf("fails = %d, output %q; want a silent skip", fails, sb.String())
	}
}

func TestToleranceGate(t *testing.T) {
	cases := []struct {
		name      string
		cur, base float64
		wantFails int
	}{
		{"within", 110, 100, 0},
		{"at-boundary", 120, 100, 0},
		{"beyond", 121, 100, 1},
		{"improvement", 50, 100, 0},
	}
	for _, c := range cases {
		var sb strings.Builder
		fails := 0
		check(&sb, &fails, "B", "ns/op", c.cur, c.base, 0.20)
		if fails != c.wantFails {
			t.Errorf("%s: cur=%v base=%v: fails = %d, want %d\n%s",
				c.name, c.cur, c.base, fails, c.wantFails, sb.String())
		}
	}
}

// TestExactQoRPin: the portfolio baselines record the deterministic
// "area" metric; any deviation fails regardless of the tolerance.
func TestExactQoRPin(t *testing.T) {
	got := parsed(t)
	m := got["BenchmarkAnytimePortfolio/hal"]
	if m.area != 842 {
		t.Fatalf("area metric parsed as %v, want 842", m.area)
	}
	var sb strings.Builder
	fails := 0
	compare(&sb, &fails, got, "BenchmarkAnytimePortfolio/hal",
		modeEntry{NsPerOp: 5000000, AllocsPerOp: 12345, Area: 842}, 0.20)
	if fails != 0 {
		t.Fatalf("matching QoR pin failed:\n%s", sb.String())
	}
	sb.Reset()
	// A one-unit QoR regression must fail even at an enormous tolerance.
	compare(&sb, &fails, got, "BenchmarkAnytimePortfolio/hal",
		modeEntry{NsPerOp: 5000000, AllocsPerOp: 12345, Area: 841}, 100)
	if fails != 1 || !strings.Contains(sb.String(), "pinned QoR") {
		t.Fatalf("QoR drift not caught (fails=%d):\n%s", fails, sb.String())
	}
}

// TestEmptyBenchOutputRejected: an output file with no benchmark lines
// (a tee'd build failure, a -bench regexp matching nothing) is an error,
// not a vacuous pass.
func TestEmptyBenchOutputRejected(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok  \tpchls\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from benchless output", len(got))
	}
	// parseBenchFile layers the emptiness check on top; exercise it via a
	// real file in the repo-adjacent temp dir.
	f := t.TempDir() + "/empty.txt"
	if err := os.WriteFile(f, []byte("PASS\nok  \tpchls\t0.1s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseBenchFile(f); err == nil {
		t.Fatal("parseBenchFile accepted an output with zero benchmarks")
	}
}

func keysOf(m map[string]metrics) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestParseBenchKeepsHyphenatedNames pins the scaling-tier fix: only an
// all-digit tail after the last hyphen is a GOMAXPROCS suffix. Tier names
// like "layered-n100" keep their hyphen, with or without a suffix.
func TestParseBenchKeepsHyphenatedNames(t *testing.T) {
	out := `BenchmarkScaling/layered-n100/scale-8 	 1	 200000 ns/op	 100 allocs/op
BenchmarkScaling/blocks-n1000/legacy 	 1	 900000 ns/op	 200 allocs/op
`
	got, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkScaling/layered-n100/scale"]; !ok {
		t.Fatalf("suffixed tier name mangled; parsed names: %v", keysOf(got))
	}
	if _, ok := got["BenchmarkScaling/blocks-n1000/legacy"]; !ok {
		t.Fatalf("unsuffixed tier name mangled; parsed names: %v", keysOf(got))
	}
}
