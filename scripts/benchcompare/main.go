// Command benchcompare diffs a fresh `go test -bench` run against the
// checked-in baselines in results/BENCH_*.json and fails (exit 1) when
// ns/op or allocs/op regresses beyond the tolerance. It is the regression
// gate behind `make bench-compare` (scripts/bench_compare.sh).
//
// Only benchmarks present in the baseline files are checked; allocs/op is
// deterministic for this workload, ns/op is machine-dependent, so the
// tolerance (default 0.20 = 20%) applies to both but is expected to matter
// for ns/op only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type metrics struct {
	ns     float64
	allocs float64
}

type modeEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type synthBaseline struct {
	Benchmarks map[string]map[string]modeEntry `json:"benchmarks"`
}

type serverBaseline struct {
	Results map[string]modeEntry `json:"results"`
}

// parseBenchOutput extracts ns/op and allocs/op per benchmark name from
// go-test bench output. The trailing -N GOMAXPROCS suffix is stripped.
// When a benchmark appears more than once (-count > 1), the last
// occurrence wins: the first pass doubles as warmup, which matters for
// ns/op stability on shared runners.
func parseBenchOutput(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]metrics)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		m := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.ns = v
			case "allocs/op":
				m.allocs = v
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

// check compares one metric and returns a failure line, an info line, or
// nothing (metric missing from baseline).
func check(fails *int, name, metric string, cur, base, tol float64) {
	if base <= 0 {
		return
	}
	ratio := cur / base
	switch {
	case ratio > 1+tol:
		*fails++
		fmt.Printf("FAIL %-55s %s %12.0f vs baseline %12.0f (%+.1f%%, tolerance %.0f%%)\n",
			name, metric, cur, base, (ratio-1)*100, tol*100)
	default:
		fmt.Printf("ok   %-55s %s %12.0f vs baseline %12.0f (%+.1f%%)\n",
			name, metric, cur, base, (ratio-1)*100)
	}
}

func compare(fails *int, got map[string]metrics, name string, base modeEntry, tol float64) {
	cur, ok := got[name]
	if !ok {
		*fails++
		fmt.Printf("FAIL %-55s missing from benchmark output\n", name)
		return
	}
	check(fails, name, "ns/op    ", cur.ns, base.NsPerOp, tol)
	check(fails, name, "allocs/op", cur.allocs, base.AllocsPerOp, tol)
}

func main() {
	synthJSON := flag.String("synth", "results/BENCH_synthesize.json", "synthesize baseline JSON")
	serverJSON := flag.String("server", "results/BENCH_server.json", "server baseline JSON")
	synthOut := flag.String("synthout", "", "go-bench output for BenchmarkSynthesize")
	serverOut := flag.String("serverout", "", "go-bench output for BenchmarkServerSynthesize")
	tol := flag.Float64("tolerance", 0.20, "allowed fractional regression for ns/op and allocs/op")
	flag.Parse()

	fails := 0
	if *synthOut != "" {
		var base synthBaseline
		raw, err := os.ReadFile(*synthJSON)
		if err == nil {
			err = json.Unmarshal(raw, &base)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcompare:", err)
			os.Exit(2)
		}
		got, err := parseBenchOutput(*synthOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcompare:", err)
			os.Exit(2)
		}
		for _, name := range sortedKeys(base.Benchmarks) {
			for _, mode := range sortedKeys(base.Benchmarks[name]) {
				compare(&fails, got, "BenchmarkSynthesize/"+name+"/"+mode, base.Benchmarks[name][mode], *tol)
			}
		}
	}
	if *serverOut != "" {
		var base serverBaseline
		raw, err := os.ReadFile(*serverJSON)
		if err == nil {
			err = json.Unmarshal(raw, &base)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcompare:", err)
			os.Exit(2)
		}
		got, err := parseBenchOutput(*serverOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcompare:", err)
			os.Exit(2)
		}
		for _, mode := range sortedKeys(base.Results) {
			compare(&fails, got, "BenchmarkServerSynthesize/"+mode, base.Results[mode], *tol)
		}
	}
	if fails > 0 {
		fmt.Printf("\nbenchcompare: %d regression(s) beyond %.0f%% tolerance\n", fails, *tol*100)
		os.Exit(1)
	}
	fmt.Println("\nbenchcompare: all benchmarks within tolerance")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
