// Command benchcompare diffs a fresh `go test -bench` run against the
// checked-in baselines in results/BENCH_*.json and fails (exit 1) when
// ns/op or allocs/op regresses beyond the tolerance. It is the regression
// gate behind `make bench-compare` (scripts/bench_compare.sh).
//
// Only benchmarks present in the baseline files are checked; allocs/op is
// deterministic for this workload, ns/op is machine-dependent, so the
// tolerance (default 0.20 = 20%) applies to both but is expected to matter
// for ns/op only.
//
// The gate is paranoid about silent passes: a benchmark named in a
// baseline but absent from the fresh output is a hard failure (a renamed
// or deleted benchmark must be renamed in the baseline too, not quietly
// skipped), a metric that was positive in the baseline but zero in the
// fresh run is a hard failure (it means -benchmem was dropped or the
// bench crashed mid-suite), and a bench output file that parses to zero
// benchmarks is a usage error (exit 2).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type metrics struct {
	ns     float64
	allocs float64
	area   float64
	points float64
}

type modeEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Area is a deterministic QoR pin (portfolio and pareto baselines):
	// when recorded, the fresh run's custom "area" metric must match
	// exactly — the tolerance never applies to solution quality.
	Area float64 `json:"area"`
	// Points pins the Pareto front size the same way.
	Points float64 `json:"points"`
}

type synthBaseline struct {
	Benchmarks map[string]map[string]modeEntry `json:"benchmarks"`
}

type serverBaseline struct {
	Results map[string]modeEntry `json:"results"`
}

type portfolioBaseline struct {
	Benchmarks map[string]modeEntry `json:"benchmarks"`
}

// paretoBaseline gates the multi-objective exploration lane
// (BenchmarkPareto): ns/op and allocs/op within tolerance, front size and
// minimum front area pinned exactly.
type paretoBaseline struct {
	Benchmarks map[string]modeEntry `json:"benchmarks"`
}

// clusterBaseline gates the distributed-synthesis lane
// (BenchmarkCluster): per-tier wall-time budgets ("workers1",
// "workers3") plus a floor on the workers1-over-workers3 ratio — the
// coordinator's scaling claim, re-verified on every run. The benchmark's
// per-point service time is simulated (fixed sleeps), so its ns/op is
// unusually stable across machines.
type clusterBaseline struct {
	Benchmarks map[string]modeEntry `json:"benchmarks"`
	MinSpeedup float64              `json:"min_speedup"`
}

// scalingBaseline gates the thousand-node scaling lane
// (BenchmarkScaling): per tier (e.g. "layered-n1000") and mode ("scale" /
// "legacy") budgets, plus a floor on the legacy-over-scale wall-time
// ratio — the refactor's speedup claim, re-verified on every full run.
type scalingBaseline struct {
	Benchmarks map[string]map[string]modeEntry `json:"benchmarks"`
	MinSpeedup map[string]float64              `json:"min_speedup"`
}

// parseBench extracts ns/op and allocs/op per benchmark name from go-test
// bench output. The trailing -N GOMAXPROCS suffix is stripped. When a
// benchmark appears more than once (-count > 1), the last occurrence
// wins: the first pass doubles as warmup, which matters for ns/op
// stability on shared runners.
func parseBench(r io.Reader) (map[string]metrics, error) {
	out := make(map[string]metrics)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix (absent when GOMAXPROCS=1), but
		// only when the tail is all digits — benchmark names themselves
		// may contain hyphens (the scaling tiers: "layered-n100").
		if i := strings.LastIndex(name, "-"); i > 0 && isDigits(name[i+1:]) {
			name = name[:i]
		}
		m := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.ns = v
			case "allocs/op":
				m.allocs = v
			case "area":
				m.area = v
			case "points":
				m.points = v
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

// isDigits reports whether s is nonempty and all ASCII digits.
func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// parseBenchFile reads one go-bench output file and refuses an output
// that contains no benchmark lines at all: tee-ing a build failure or an
// empty -bench match into the gate must not pass vacuously.
func parseBenchFile(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	got, err := parseBench(f)
	if err != nil {
		return nil, err
	}
	if len(got) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found (did the bench run fail?)", path)
	}
	return got, nil
}

// check compares one metric and writes a FAIL or ok line, or nothing when
// the baseline does not record the metric. A metric recorded as positive
// in the baseline but zero (or negative) in the fresh run is a hard
// failure, not a -100% improvement.
func check(w io.Writer, fails *int, name, metric string, cur, base, tol float64) {
	if base <= 0 {
		return
	}
	if cur <= 0 {
		*fails++
		fmt.Fprintf(w, "FAIL %-55s %s missing from fresh run (baseline %12.0f)\n",
			name, metric, base)
		return
	}
	ratio := cur / base
	switch {
	case ratio > 1+tol:
		*fails++
		fmt.Fprintf(w, "FAIL %-55s %s %12.0f vs baseline %12.0f (%+.1f%%, tolerance %.0f%%)\n",
			name, metric, cur, base, (ratio-1)*100, tol*100)
	default:
		fmt.Fprintf(w, "ok   %-55s %s %12.0f vs baseline %12.0f (%+.1f%%)\n",
			name, metric, cur, base, (ratio-1)*100)
	}
}

// compare gates one baseline entry: a benchmark present in the baseline
// but absent from the fresh output is a hard failure.
func compare(w io.Writer, fails *int, got map[string]metrics, name string, base modeEntry, tol float64) {
	cur, ok := got[name]
	if !ok {
		*fails++
		fmt.Fprintf(w, "FAIL %-55s missing from benchmark output\n", name)
		return
	}
	check(w, fails, name, "ns/op    ", cur.ns, base.NsPerOp, tol)
	check(w, fails, name, "allocs/op", cur.allocs, base.AllocsPerOp, tol)
	checkExact(w, fails, name, "area     ", cur.area, base.Area)
	checkExact(w, fails, name, "points   ", cur.points, base.Points)
}

// checkExact gates a deterministic QoR metric: any deviation from the
// recorded baseline is a failure regardless of the tolerance, and a
// vanished metric fails like in check.
func checkExact(w io.Writer, fails *int, name, metric string, cur, base float64) {
	if base <= 0 {
		return
	}
	if cur != base {
		*fails++
		if cur <= 0 {
			fmt.Fprintf(w, "FAIL %-55s %s missing from fresh run (baseline %12.1f)\n", name, metric, base)
			return
		}
		fmt.Fprintf(w, "FAIL %-55s %s %12.1f vs pinned QoR %12.1f (deterministic metric, no tolerance)\n",
			name, metric, cur, base)
		return
	}
	fmt.Fprintf(w, "ok   %-55s %s %12.1f matches the pinned QoR exactly\n", name, metric, cur)
}

func loadBaseline(path string, v any) {
	raw, err := os.ReadFile(path)
	if err == nil {
		err = json.Unmarshal(raw, v)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
}

func loadBenchOutput(path string) map[string]metrics {
	got, err := parseBenchFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	return got
}

func main() {
	synthJSON := flag.String("synth", "results/BENCH_synthesize.json", "synthesize baseline JSON")
	serverJSON := flag.String("server", "results/BENCH_server.json", "server baseline JSON")
	portfolioJSON := flag.String("portfolio", "results/BENCH_portfolio.json", "portfolio baseline JSON")
	synthOut := flag.String("synthout", "", "go-bench output for BenchmarkSynthesize")
	serverOut := flag.String("serverout", "", "go-bench output for BenchmarkServerSynthesize")
	portfolioOut := flag.String("portfolioout", "", "go-bench output for BenchmarkAnytimePortfolio")
	paretoJSON := flag.String("pareto", "results/BENCH_pareto.json", "pareto baseline JSON")
	paretoOut := flag.String("paretoout", "", "go-bench output for BenchmarkPareto")
	scalingJSON := flag.String("scaling", "results/BENCH_scaling.json", "scaling baseline JSON")
	scalingOut := flag.String("scalingout", "", "go-bench output for BenchmarkScaling")
	clusterJSON := flag.String("cluster", "results/BENCH_cluster.json", "cluster baseline JSON")
	clusterOut := flag.String("clusterout", "", "go-bench output for BenchmarkCluster")
	scalingTiers := flag.String("scalingtiers", "", "comma-separated subset of scaling tiers to gate (default: every tier in the baseline)")
	tol := flag.Float64("tolerance", 0.20, "allowed fractional regression for ns/op and allocs/op")
	flag.Parse()

	fails := 0
	if *synthOut != "" {
		var base synthBaseline
		loadBaseline(*synthJSON, &base)
		got := loadBenchOutput(*synthOut)
		for _, name := range sortedKeys(base.Benchmarks) {
			for _, mode := range sortedKeys(base.Benchmarks[name]) {
				compare(os.Stdout, &fails, got, "BenchmarkSynthesize/"+name+"/"+mode, base.Benchmarks[name][mode], *tol)
			}
		}
	}
	if *serverOut != "" {
		var base serverBaseline
		loadBaseline(*serverJSON, &base)
		got := loadBenchOutput(*serverOut)
		for _, mode := range sortedKeys(base.Results) {
			compare(os.Stdout, &fails, got, "BenchmarkServerSynthesize/"+mode, base.Results[mode], *tol)
		}
	}
	if *portfolioOut != "" {
		var base portfolioBaseline
		loadBaseline(*portfolioJSON, &base)
		got := loadBenchOutput(*portfolioOut)
		for _, name := range sortedKeys(base.Benchmarks) {
			compare(os.Stdout, &fails, got, "BenchmarkAnytimePortfolio/"+name, base.Benchmarks[name], *tol)
		}
	}
	if *paretoOut != "" {
		var base paretoBaseline
		loadBaseline(*paretoJSON, &base)
		got := loadBenchOutput(*paretoOut)
		for _, name := range sortedKeys(base.Benchmarks) {
			compare(os.Stdout, &fails, got, "BenchmarkPareto/"+name, base.Benchmarks[name], *tol)
		}
	}
	if *scalingOut != "" {
		var base scalingBaseline
		loadBaseline(*scalingJSON, &base)
		got := loadBenchOutput(*scalingOut)
		subset := map[string]bool{}
		for _, t := range strings.Split(*scalingTiers, ",") {
			if t = strings.TrimSpace(t); t != "" {
				subset[t] = true
			}
		}
		for _, tier := range sortedKeys(base.Benchmarks) {
			if len(subset) > 0 && !subset[tier] {
				continue
			}
			// Wall-time and allocation budgets gate the scaling engine
			// only; the legacy mode exists to be measured against, and its
			// absolute time is pinned by the speedup floor below instead.
			if scale, ok := base.Benchmarks[tier]["scale"]; ok {
				compare(os.Stdout, &fails, got, "BenchmarkScaling/"+tier+"/scale", scale, *tol)
			}
			min := base.MinSpeedup[tier]
			if min <= 0 {
				continue
			}
			scaleCur, okS := got["BenchmarkScaling/"+tier+"/scale"]
			legacyCur, okL := got["BenchmarkScaling/"+tier+"/legacy"]
			name := "BenchmarkScaling/" + tier + " speedup"
			switch {
			case !okS || !okL || scaleCur.ns <= 0 || legacyCur.ns <= 0:
				fails++
				fmt.Fprintf(os.Stdout, "FAIL %-55s legacy/scale pair missing from fresh run (floor %.1fx)\n", name, min)
			case legacyCur.ns/scaleCur.ns < min:
				fails++
				fmt.Fprintf(os.Stdout, "FAIL %-55s %9.1fx below the %.1fx floor (legacy %12.0f ns, scale %12.0f ns)\n",
					name, legacyCur.ns/scaleCur.ns, min, legacyCur.ns, scaleCur.ns)
			default:
				fmt.Fprintf(os.Stdout, "ok   %-55s %9.1fx (floor %.1fx; legacy %12.0f ns, scale %12.0f ns)\n",
					name, legacyCur.ns/scaleCur.ns, min, legacyCur.ns, scaleCur.ns)
			}
		}
	}
	if *clusterOut != "" {
		var base clusterBaseline
		loadBaseline(*clusterJSON, &base)
		got := loadBenchOutput(*clusterOut)
		for _, tier := range sortedKeys(base.Benchmarks) {
			compare(os.Stdout, &fails, got, "BenchmarkCluster/"+tier, base.Benchmarks[tier], *tol)
		}
		if base.MinSpeedup > 0 {
			one, okOne := got["BenchmarkCluster/workers1"]
			three, okThree := got["BenchmarkCluster/workers3"]
			name := "BenchmarkCluster speedup"
			switch {
			case !okOne || !okThree || one.ns <= 0 || three.ns <= 0:
				fails++
				fmt.Fprintf(os.Stdout, "FAIL %-55s workers1/workers3 pair missing from fresh run (floor %.1fx)\n", name, base.MinSpeedup)
			case one.ns/three.ns < base.MinSpeedup:
				fails++
				fmt.Fprintf(os.Stdout, "FAIL %-55s %9.1fx below the %.1fx floor (workers1 %12.0f ns, workers3 %12.0f ns)\n",
					name, one.ns/three.ns, base.MinSpeedup, one.ns, three.ns)
			default:
				fmt.Fprintf(os.Stdout, "ok   %-55s %9.1fx (floor %.1fx; workers1 %12.0f ns, workers3 %12.0f ns)\n",
					name, one.ns/three.ns, base.MinSpeedup, one.ns, three.ns)
			}
		}
	}
	if fails > 0 {
		fmt.Printf("\nbenchcompare: %d regression(s) beyond %.0f%% tolerance\n", fails, *tol*100)
		os.Exit(1)
	}
	fmt.Println("\nbenchcompare: all benchmarks within tolerance")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
