// Command pchls-explore regenerates the paper's Figure 2: datapath area as
// a function of the per-cycle power constraint, for each benchmark/time-
// constraint pair. Results are printed as CSV tables and an ASCII plot.
//
// Usage:
//
//	pchls-explore -all                    # all six Figure 2 curves
//	pchls-explore -g hal -T 17            # one curve
//	pchls-explore -all -csvdir results/   # also write one CSV per curve
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pchls"
	"pchls/internal/explore"
)

func main() {
	var (
		all      = flag.Bool("all", false, "sweep all six Figure 2 curves")
		surface  = flag.Bool("surface", false, "with -g: explore the (T x P<) surface and print the area matrix + Pareto front")
		graphArg = flag.String("g", "", "benchmark name for a single sweep")
		deadline = flag.Int("T", 0, "time constraint for a single sweep")
		pmin     = flag.Float64("pmin", 0, "minimum power budget (default: library-derived)")
		pmax     = flag.Float64("pmax", 150, "maximum power budget (Figure 2 x-axis end)")
		step     = flag.Float64("step", 5, "power grid step")
		single   = flag.Bool("single", false, "use the one-pass paper algorithm (faster, noisier)")
		raw      = flag.Bool("raw", false, "disable budget subsumption (report raw per-point results)")
		csvDir   = flag.String("csvdir", "", "write one CSV file per curve into this directory")
		htmlOut  = flag.String("html", "", "write a self-contained HTML sweep report to this file (with -surface: the heatmap page)")
		plotW    = flag.Int("plotw", 90, "ASCII plot width")
		plotH    = flag.Int("ploth", 28, "ASCII plot height")
		workers  = flag.Int("j", 0, "concurrent synthesis runs per sweep (0 = GOMAXPROCS, 1 = serial); results are identical for every setting")
		stats    = flag.Bool("stats", false, "print aggregated synthesis work counters per sweep (to stderr)")
	)
	flag.Parse()

	if *surface {
		if *graphArg == "" {
			fmt.Fprintln(os.Stderr, "usage: pchls-explore -surface -g <benchmark>")
			os.Exit(2)
		}
		runSurface(*graphArg, *htmlOut, *workers, *stats)
		return
	}
	var specs []explore.Figure2Spec
	switch {
	case *all:
		specs = explore.Figure2Specs()
	case *graphArg != "" && *deadline > 0:
		specs = []explore.Figure2Spec{{Benchmark: *graphArg, Deadline: *deadline}}
	default:
		fmt.Fprintln(os.Stderr, "usage: pchls-explore -all | -g <benchmark> -T <cycles> | -surface -g <benchmark>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	lib := pchls.Table1()
	gridMin := *pmin
	if gridMin <= 0 {
		gridMin, _, _ = explore.DefaultGrid()
	}
	cfg := pchls.SweepConfig{
		PowerMin: gridMin, PowerMax: *pmax, Step: *step,
		SinglePass: *single, NoSubsume: *raw, Workers: *workers,
	}
	cfg.Config.Workers = *workers
	var curves []pchls.Curve
	for _, spec := range specs {
		g, err := pchls.Benchmark(spec.Benchmark)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweeping %s (T=%d) over P< in [%g,%g] step %g...\n",
			spec.Benchmark, spec.Deadline, cfg.PowerMin, cfg.PowerMax, cfg.Step)
		c, err := pchls.Sweep(g, lib, spec.Deadline, cfg)
		if err != nil {
			fatal(err)
		}
		curves = append(curves, c)
		fmt.Print(c.CSV())
		if knee, ok := c.Knee(); ok {
			plat, _ := c.PlateauArea()
			fmt.Printf("# %s: tightest feasible P< = %g, plateau area = %.1f\n\n", c.Label(), knee, plat)
		} else {
			fmt.Printf("# %s: no feasible point on the grid\n\n", c.Label())
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "synthesis work for %s:\n%s", c.Label(), c.TotalStats().String())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			name := fmt.Sprintf("%s_T%d.csv", spec.Benchmark, spec.Deadline)
			if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(c.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Println(pchls.PlotCurves(curves, *plotW, *plotH))
	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(pchls.SweepHTML(curves)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *htmlOut)
	}
}

// runSurface explores the (T x P<) plane of one benchmark around its
// critical path and library power floor; htmlOut optionally receives the
// heatmap page.
func runSurface(name, htmlOut string, workers int, stats bool) {
	g, err := pchls.Benchmark(name)
	if err != nil {
		fatal(err)
	}
	lib := pchls.Table1()
	asap, err := pchls.ASAP(g, pchls.UniformFastest(lib))
	if err != nil {
		fatal(err)
	}
	cp := asap.Length()
	cfg := pchls.SurfaceConfig{SinglePass: true, Workers: workers}
	for T := cp; T <= cp*2+4; T += (cp + 5) / 6 {
		cfg.Deadlines = append(cfg.Deadlines, T)
	}
	peak := asap.PeakPower()
	for P := peak / 5; P <= peak*1.2; P += peak / 8 {
		cfg.Powers = append(cfg.Powers, float64(int(P*10))/10)
	}
	s, err := pchls.ExploreSurface(g, lib, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("time-power surface of %q (area per cell; critical path %d, unconstrained peak %.1f):\n\n", g.Name, cp, peak)
	fmt.Println(s.Table())
	fmt.Println("Pareto front (deadline, power, area):")
	for _, p := range s.ParetoFront() {
		fmt.Printf("  T=%-3d P<=%-6g area %.1f\n", p.Deadline, p.Power, p.Area)
	}
	if stats {
		fmt.Fprintf(os.Stderr, "synthesis work over the surface:\n%s", s.TotalStats().String())
	}
	if htmlOut != "" {
		if err := os.WriteFile(htmlOut, []byte(pchls.SurfaceHTML(s)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", htmlOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pchls-explore:", err)
	os.Exit(1)
}
