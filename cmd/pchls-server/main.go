// Command pchls-server runs the power-constrained high-level synthesis
// daemon: an HTTP/JSON service exposing single-design synthesis, anytime
// portfolio synthesis, power sweeps and time-power surface exploration
// over the pchls engine, with a
// content-addressed result cache, singleflight deduplication of identical
// in-flight requests, bounded admission, and Prometheus-text metrics.
//
// Usage:
//
//	pchls-server -addr :8080 -workers 8 -cache 4096 -ttl 1h
//
// Endpoints:
//
//	POST /v1/synthesize   {"benchmark":"hal","deadline":10,"power_max":20}
//	POST /v1/portfolio    {"benchmark":"hal","deadline":10,"power_max":20,"k":8,"budget":2,"seed":1}
//	POST /v1/sweep        {"benchmark":"hal","deadline":17,"power_min":5,"power_max":50,"step":5}
//	POST /v1/surface      {"benchmark":"hal","deadlines":[10,12],"powers":[20,40]}
//	GET  /v1/benchmarks
//	GET  /healthz
//	GET  /metrics
//
// With -worker the daemon also serves the cluster-internal endpoints
// (POST /cluster/point, GET /cluster/cache) so a pchls-coordinator can
// shard grids onto it. -self names this worker's externally reachable
// base URL; -peers (static member list) or -join (register with a
// coordinator and adopt its member list) configure the cache-peer ring
// for miss-time peer fill.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests complete (up to -drain), then the process exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pchls/internal/cluster"
	"pchls/internal/server"
)

// register announces self to a coordinator and returns the member list.
func register(join, self string) ([]string, error) {
	body, err := json.Marshal(cluster.RegisterRequest{Addr: self})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(strings.TrimRight(join, "/")+"/cluster/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("coordinator returned %d", resp.StatusCode)
	}
	var reg cluster.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return nil, err
	}
	return reg.Members, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 4, "concurrent synthesis computations")
		queue    = flag.Int("queue", 0, "admitted requests that may wait for a worker slot (0 = 4x workers)")
		entries  = flag.Int("cache", 1024, "result-cache capacity in entries")
		ttl      = flag.Duration("ttl", 0, "result-cache entry lifetime (0 = no expiry)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request synthesis deadline")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		maxBody  = flag.Int64("max-body", 8<<20, "maximum request body bytes")
		xworkers = flag.Int("explore-workers", 0, "per-request worker count for sweep/surface grids (0 = GOMAXPROCS)")
		validate = flag.Bool("validate", false, "re-check every synthesized design with the independent constraint validator before serving it")
		worker   = flag.Bool("worker", false, "serve the cluster-internal endpoints (/cluster/point, /cluster/cache)")
		self     = flag.String("self", "", "this worker's externally reachable base URL, e.g. http://127.0.0.1:8081 (required with -peers or -join)")
		peerList = flag.String("peers", "", "comma-separated worker base URLs forming the cache-peer ring (implies -worker)")
		join     = flag.String("join", "", "coordinator base URL to register with; the response's member list seeds the peer ring (implies -worker)")
	)
	flag.Parse()

	isWorker := *worker || *peerList != "" || *join != ""
	if (*peerList != "" || *join != "") && *self == "" {
		log.Fatalf("pchls-server: -peers/-join require -self")
	}

	var peers *cluster.Peers
	if *peerList != "" || *join != "" {
		peers = cluster.NewPeers()
	}

	s := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *entries,
		CacheTTL:       *ttl,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		ExploreWorkers: *xworkers,
		Validate:       *validate,
		Worker:         isWorker,
		Peers:          peers,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pchls-server: %v", err)
	}
	// The peer ring is configured (and the coordinator joined) only once
	// the listener exists, so nobody is told about a dead port.
	if peers != nil {
		members := []string{}
		for _, m := range strings.Split(*peerList, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, m)
			}
		}
		if *join != "" {
			got, err := register(*join, *self)
			if err != nil {
				log.Fatalf("pchls-server: register with %s: %v", *join, err)
			}
			members = append(members, got...)
		}
		peers.Configure(*self, members)
	}
	log.Printf("pchls-server: listening on %s (workers=%d cache=%d ttl=%s timeout=%s worker=%t)",
		l.Addr(), *workers, *entries, *ttl, *timeout, isWorker)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("pchls-server: %v", err)
		}
	case <-ctx.Done():
		log.Printf("pchls-server: draining (up to %s)...", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(shCtx); err != nil {
			log.Printf("pchls-server: drain incomplete: %v", err)
			os.Exit(1)
		}
		log.Printf("pchls-server: drained cleanly")
	}
}
