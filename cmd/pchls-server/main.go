// Command pchls-server runs the power-constrained high-level synthesis
// daemon: an HTTP/JSON service exposing single-design synthesis, anytime
// portfolio synthesis, power sweeps and time-power surface exploration
// over the pchls engine, with a
// content-addressed result cache, singleflight deduplication of identical
// in-flight requests, bounded admission, and Prometheus-text metrics.
//
// Usage:
//
//	pchls-server -addr :8080 -workers 8 -cache 4096 -ttl 1h
//
// Endpoints:
//
//	POST /v1/synthesize   {"benchmark":"hal","deadline":10,"power_max":20}
//	POST /v1/portfolio    {"benchmark":"hal","deadline":10,"power_max":20,"k":8,"budget":2,"seed":1}
//	POST /v1/sweep        {"benchmark":"hal","deadline":17,"power_min":5,"power_max":50,"step":5}
//	POST /v1/surface      {"benchmark":"hal","deadlines":[10,12],"powers":[20,40]}
//	GET  /v1/benchmarks
//	GET  /healthz
//	GET  /metrics
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests complete (up to -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pchls/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 4, "concurrent synthesis computations")
		queue    = flag.Int("queue", 0, "admitted requests that may wait for a worker slot (0 = 4x workers)")
		entries  = flag.Int("cache", 1024, "result-cache capacity in entries")
		ttl      = flag.Duration("ttl", 0, "result-cache entry lifetime (0 = no expiry)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request synthesis deadline")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		maxBody  = flag.Int64("max-body", 8<<20, "maximum request body bytes")
		xworkers = flag.Int("explore-workers", 0, "per-request worker count for sweep/surface grids (0 = GOMAXPROCS)")
		validate = flag.Bool("validate", false, "re-check every synthesized design with the independent constraint validator before serving it")
	)
	flag.Parse()

	s := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *entries,
		CacheTTL:       *ttl,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		ExploreWorkers: *xworkers,
		Validate:       *validate,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pchls-server: %v", err)
	}
	log.Printf("pchls-server: listening on %s (workers=%d cache=%d ttl=%s timeout=%s)",
		l.Addr(), *workers, *entries, *ttl, *timeout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("pchls-server: %v", err)
		}
	case <-ctx.Done():
		log.Printf("pchls-server: draining (up to %s)...", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(shCtx); err != nil {
			log.Printf("pchls-server: drain incomplete: %v", err)
			os.Exit(1)
		}
		log.Printf("pchls-server: drained cleanly")
	}
}
