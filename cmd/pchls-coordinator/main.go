// Command pchls-coordinator fronts a fleet of pchls-server workers: it
// serves the same /v1 API, but sweep/surface/batch grids are sharded
// across the registered workers by the content address of each grid
// cell (consistent hashing keeps every worker's result cache hot for
// its shard), with work-stealing for straggler shards and retry on a
// different worker when one fails. Single synthesize requests route to
// their key's owner; portfolio requests are proxied whole. Responses
// are byte-identical to a single pchls-server.
//
// Usage:
//
//	pchls-coordinator -addr :8080 -cluster-workers http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Workers may also join later via POST /cluster/register (the
// pchls-server -join flag).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pchls/internal/cluster"
	"pchls/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workerCSV = flag.String("cluster-workers", "", "comma-separated worker base URLs, e.g. http://127.0.0.1:8081,http://127.0.0.1:8082")
		perWorker = flag.Int("per-worker", 2, "points dispatched concurrently to each worker")
		pointTO   = flag.Duration("point-timeout", 60*time.Second, "per-point attempt timeout before retrying on another worker")
		revive    = flag.Duration("revive-after", 5*time.Second, "probation before a failed worker is probed again")
		workers   = flag.Int("workers", 8, "concurrent grid computations admitted")
		queue     = flag.Int("queue", 0, "admitted requests that may wait for a slot (0 = 4x workers)")
		entries   = flag.Int("cache", 1024, "result-cache capacity in entries")
		ttl       = flag.Duration("ttl", 0, "result-cache entry lifetime (0 = no expiry)")
		timeout   = flag.Duration("timeout", 120*time.Second, "per-request deadline")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		maxBody   = flag.Int64("max-body", 8<<20, "maximum request body bytes")
	)
	flag.Parse()

	pool := cluster.NewPool(cluster.PoolConfig{
		PerWorker:    *perWorker,
		PointTimeout: *pointTO,
		ReviveAfter:  *revive,
	})
	var members []string
	for _, m := range strings.Split(*workerCSV, ",") {
		if m = strings.TrimSpace(m); m != "" {
			members = append(members, m)
		}
	}
	pool.SetMembers(members)

	s := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *entries,
		CacheTTL:       *ttl,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Pool:           pool,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pchls-coordinator: %v", err)
	}
	log.Printf("pchls-coordinator: listening on %s (cluster workers: %s)",
		l.Addr(), strings.Join(pool.Members(), ", "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("pchls-coordinator: %v", err)
		}
	case <-ctx.Done():
		log.Printf("pchls-coordinator: draining (up to %s)...", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(shCtx); err != nil {
			log.Printf("pchls-coordinator: drain incomplete: %v", err)
			os.Exit(1)
		}
		log.Printf("pchls-coordinator: drained cleanly")
	}
}
