// Command cdfgtool inspects and converts data-flow graphs.
//
// Usage:
//
//	cdfgtool stats  <benchmark|file.cdfg>      # node/edge/op statistics
//	cdfgtool dot    <benchmark|file.cdfg>      # DOT export to stdout
//	cdfgtool text   <benchmark|file.cdfg>      # .cdfg text to stdout
//	cdfgtool sched  <benchmark|file.cdfg> -T N # ASAP/ALAP mobility table
//	cdfgtool gen    -n 30 -seed 7              # random layered DAG
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"pchls"
	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/gen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	switch cmd {
	case "stats":
		g := load(args)
		printStats(g)
	case "dot":
		g := load(args)
		fmt.Print(g.Dot(nil))
	case "text":
		g := load(args)
		fmt.Print(g.Text())
	case "sched":
		fs := flag.NewFlagSet("sched", flag.ExitOnError)
		deadline := fs.Int("T", 0, "deadline (default: critical path)")
		fs.Parse(argsAfterTarget(args))
		g := load(args)
		printSched(g, *deadline)
	case "gen":
		fs := flag.NewFlagSet("gen", flag.ExitOnError)
		n := fs.Int("n", 20, "number of computation nodes")
		seed := fs.Int64("seed", 1, "generator seed")
		width := fs.Int("width", 4, "max nodes per layer")
		mul := fs.Float64("mul", 0.3, "multiply fraction of the op mix")
		cmp := fs.Float64("cmp", 0.1, "compare fraction of the op mix")
		edges := fs.Float64("edges", 0.5, "edge density in [0,1]: chance of a second predecessor per node")
		libOut := fs.String("libout", "", "also generate a random library: write it to this file (\"-\" = stdout)")
		modsPerOp := fs.Int("mods", 2, "with -libout: max alternative modules per operation")
		delayMax := fs.Int("delaymax", 3, "with -libout: max module delay in cycles")
		powMin := fs.Float64("pmin", 0.5, "with -libout: min per-cycle module power")
		powMax := fs.Float64("pmax", 8, "with -libout: max per-cycle module power")
		levels := fs.Int("levels", 1, "with -libout: voltage operating points per computation module (<=1 = single-level)")
		legacy := fs.Bool("legacy", false, "use the pre-gen layered generator (bench.Random) for old seeds")
		preset := fs.String("preset", "", "graph-shape preset: chain|wide|layered|mixed|blocks (explicit shape flags override the recipe)")
		blocks := fs.Int("blocks", 0, "split the computations into this many disjoint blocks (<=1 = single block)")
		connect := fs.Bool("connect", false, "bridge weakly-connected components with minimum extra edges: guarantees a single-component graph")
		fs.Parse(args)
		if *legacy {
			g := bench.Random(rand.New(rand.NewSource(*seed)), bench.RandomConfig{
				Nodes: *n, MaxWidth: *width, MulFraction: *mul,
			})
			fmt.Print(g.Text())
			return
		}
		cfg := gen.GraphConfig{
			Nodes: *n, MaxWidth: *width, EdgeDensity: *edges,
			MulFraction: *mul, CmpFraction: *cmp, Blocks: *blocks,
			Connect: *connect,
		}
		if *preset != "" {
			pc, err := gen.PresetConfig(gen.Preset(*preset), *n)
			if err != nil {
				fatal(err)
			}
			// Flags given explicitly on the command line override the
			// preset's recipe knobs.
			fs.Visit(func(f *flag.Flag) {
				switch f.Name {
				case "width":
					pc.MaxWidth = *width
				case "edges":
					pc.EdgeDensity = *edges
				case "mul":
					pc.MulFraction = *mul
				case "cmp":
					pc.CmpFraction = *cmp
				case "blocks":
					pc.Blocks = *blocks
				case "connect":
					pc.Connect = *connect
				}
			})
			cfg = pc
		}
		g := gen.Graph(*seed, cfg)
		fmt.Print(g.Text())
		if *libOut != "" {
			lib := gen.Library(*seed, gen.LibraryConfig{
				ModulesPerOp: *modsPerOp, DelayMax: *delayMax,
				PowerMin: *powMin, PowerMax: *powMax, Levels: *levels,
			})
			if *libOut == "-" {
				fmt.Print(lib.Text())
			} else if err := os.WriteFile(*libOut, []byte(lib.Text()), 0o644); err != nil {
				fatal(err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote %s\n", *libOut)
			}
		}
	case "pipeline":
		fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
		maxII := fs.Int("maxii", 16, "largest initiation interval to try")
		deadline := fs.Int("T", 0, "latency bound (default: critical path + 8)")
		powerMax := fs.Float64("P", 0, "folded per-cycle power cap (0 = unconstrained)")
		fs.Parse(argsAfterTarget(args))
		g := load(args)
		runPipeline(g, *maxII, *deadline, *powerMax)
	case "verify":
		fs := flag.NewFlagSet("verify", flag.ExitOnError)
		deadline := fs.Int("T", 0, "deadline (default: critical path + 4)")
		powerMax := fs.Float64("P", 0, "power constraint (0 = unconstrained)")
		trials := fs.Int("trials", 10, "random input vectors to check")
		seed := fs.Int64("seed", 1, "input generator seed")
		fs.Parse(argsAfterTarget(args))
		g := load(args)
		runVerify(g, *deadline, *powerMax, *trials, *seed)
	default:
		usage()
	}
}

// runPipeline prints the pipelined throughput/area/power trade-off.
func runPipeline(g *pchls.Graph, maxII, deadline int, powerMax float64) {
	lib := pchls.Table1()
	bind := pchls.UniformFastest(lib)
	if deadline <= 0 {
		asap, err := pchls.ASAP(g, bind)
		if err != nil {
			fatal(err)
		}
		deadline = asap.Length() + 8
	}
	results, err := pchls.PipelineExplore(g, bind, lib, maxII, deadline, powerMax)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pipelined implementations of %q (T=%d, P<=%g):\n", g.Name, deadline, powerMax)
	fmt.Printf("%4s %10s %10s %10s\n", "II", "latency", "peak", "FU area")
	for _, r := range results {
		fmt.Printf("%4d %10d %10.2f %10.1f\n", r.II, r.Schedule.Length(), r.PeakPower(), r.FUArea)
	}
}

// runVerify synthesizes the graph and checks the generated FSMD against
// direct data-flow evaluation on random inputs.
func runVerify(g *pchls.Graph, deadline int, powerMax float64, trials int, seed int64) {
	lib := pchls.Table1()
	if deadline <= 0 {
		asap, err := pchls.ASAP(g, pchls.UniformFastest(lib))
		if err != nil {
			fatal(err)
		}
		deadline = asap.Length() + 4
	}
	d, err := pchls.SynthesizeBest(g, lib, pchls.Constraints{Deadline: deadline, PowerMax: powerMax}, pchls.Config{})
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		inputs := map[string]int64{}
		for _, n := range g.Nodes() {
			if n.Op == cdfg.Input {
				inputs[n.Name] = int64(rng.Intn(2000) - 1000)
			}
		}
		if err := pchls.VerifyDesign(d, inputs); err != nil {
			fatal(fmt.Errorf("trial %d: %w", trial, err))
		}
	}
	fmt.Printf("%s: design (T=%d, P<=%g, area %.1f) verified on %d random input vectors\n",
		g.Name, deadline, powerMax, d.Area(), trials)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cdfgtool <stats|dot|text|sched|gen> [target] [flags]
  stats <g>        node/edge/operation statistics
  dot   <g>        Graphviz DOT to stdout
  text  <g>        .cdfg text format to stdout
  sched <g> -T N   ASAP/ALAP mobility table under Table 1
  gen -n N -seed S [-preset P] [-blocks B] [-connect] [-edges D] [-mul F] [-cmp F] [-libout F] [-levels K]
                   seeded random DAG to stdout (optionally + random library,
                   with K voltage levels per module); presets: chain, wide,
                   layered, mixed, blocks
  verify <g> [-T N] [-P W] [-trials K]  synthesize + check FSMD vs evaluation
  pipeline <g> [-maxii N] [-T N] [-P W] pipelined II/area/power trade-off
<g> is a benchmark name (hal, cosine, elliptic, fir16, ar, diffeq2) or a .cdfg file.`)
	os.Exit(2)
}

func load(args []string) *pchls.Graph {
	if len(args) < 1 {
		usage()
	}
	arg := args[0]
	if g, err := pchls.Benchmark(arg); err == nil {
		return g
	}
	f, err := os.Open(arg)
	if err != nil {
		fatal(fmt.Errorf("%q is neither a benchmark nor a readable file: %w", arg, err))
	}
	defer f.Close()
	g, err := pchls.ParseGraph(f)
	if err != nil {
		fatal(err)
	}
	return g
}

func argsAfterTarget(args []string) []string {
	if len(args) <= 1 {
		return nil
	}
	return args[1:]
}

func printStats(g *pchls.Graph) {
	fmt.Printf("graph %q: %d nodes, %d edges\n", g.Name, g.N(), g.E())
	counts := g.OpCounts()
	ops := make([]cdfg.Op, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		fmt.Printf("  %-4s %d\n", op, counts[op])
	}
	lib := pchls.Table1()
	fast, _ := pchls.ASAP(g, pchls.UniformFastest(lib))
	slow, _ := pchls.ASAP(g, pchls.UniformSmallest(lib))
	fmt.Printf("critical path: %d cycles (fastest modules), %d cycles (smallest modules)\n",
		fast.Length(), slow.Length())
	fmt.Printf("sources: %d, sinks: %d\n", len(g.Sources()), len(g.Sinks()))
}

func printSched(g *pchls.Graph, deadline int) {
	lib := pchls.Table1()
	bind := pchls.UniformFastest(lib)
	asap, err := pchls.ASAP(g, bind)
	if err != nil {
		fatal(err)
	}
	if deadline <= 0 {
		deadline = asap.Length()
	}
	alap, err := pchls.ALAP(g, bind, deadline)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-10s %-5s %6s %6s %9s\n", "node", "op", "asap", "alap", "mobility")
	for _, n := range g.Nodes() {
		fmt.Printf("%-10s %-5s %6d %6d %9d\n", n.Name, n.Op, asap.Start[n.ID], alap.Start[n.ID], alap.Start[n.ID]-asap.Start[n.ID])
	}
	fmt.Printf("deadline %d, critical path %d\n", deadline, asap.Length())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdfgtool:", err)
	os.Exit(1)
}
