// Command pchls synthesizes a data-flow graph under latency and per-cycle
// power constraints and reports the resulting design.
//
// Usage:
//
//	pchls -g hal -T 10 -P 20
//	pchls -g hal -T 10 -P 20 -portfolio 8 -budget 2 -seed 1
//	pchls -g design.cdfg -lib mylib.txt -T 12 -P 40 -verilog out.v -dot out.dot
//	pchls -print-lib
//
// The -g argument is either a built-in benchmark name (hal, cosine,
// elliptic, fir16, ar, diffeq2) or a path to a .cdfg file.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"pchls"
)

func main() {
	var (
		graphArg = flag.String("g", "", "benchmark name or .cdfg file path")
		libPath  = flag.String("lib", "", "functional-unit library file (default: the paper's Table 1)")
		deadline = flag.Int("T", 0, "latency constraint in clock cycles (required)")
		powerMax = flag.Float64("P", 0, "per-cycle power constraint P< (0 = unconstrained)")
		single   = flag.Bool("single", false, "use the one-pass paper algorithm instead of the portfolio")
		portf    = flag.Int("portfolio", 0, "run the anytime portfolio with this many perturbed passes per round (0 = off; try 8)")
		budget   = flag.Int("budget", 2, "with -portfolio: maximum improvement rounds")
		seed     = flag.Int64("seed", 1, "with -portfolio: perturbation seed (fixed seed = identical result)")
		verilog  = flag.String("verilog", "", "write the FSMD Verilog implementation to this file")
		width    = flag.Int("width", 16, "datapath bit width for -verilog")
		dotOut   = flag.String("dot", "", "write the scheduled CDFG in DOT format to this file")
		profile  = flag.Bool("profile", false, "print the per-cycle power profile")
		stats    = flag.Bool("stats", false, "print synthesis work counters (scheduler runs, window-cache effectiveness)")
		printLib = flag.Bool("print-lib", false, "print the functional-unit library (Table 1) and exit")
		simulate = flag.String("simulate", "", "simulate the FSMD with comma-separated inputs, e.g. \"x=3,y=4\" (also verifies against data-flow evaluation)")
		vcdOut   = flag.String("vcd", "", "with -simulate: write a VCD waveform trace to this file")
		htmlOut  = flag.String("html", "", "write a self-contained HTML design report to this file")
		jsonOut  = flag.String("json", "", "write the design as JSON to this file")
		tbOut    = flag.String("testbench", "", "with -simulate: write a self-checking Verilog testbench to this file")
		workers  = flag.Int("j", 0, "concurrent synthesis runs in the portfolio (0 = GOMAXPROCS, 1 = serial); the design is identical for every setting")
		verifyD  = flag.Bool("verify", false, "re-check the design with the independent constraint validator (precedence, T, P<, occupancy, binding, area)")
		windows  = flag.String("windows", "auto", "candidate-window derivation: auto, exhaustive, or sdc (difference-constraint sweep for large graphs)")
		partit   = flag.String("partition", "auto", "hierarchical decomposition of disconnected graphs: auto, off, or force")
		pareto   = flag.Bool("pareto", false, "explore the constraint grid and print the non-dominated (area, latency, peak, lifetime) front instead of one design")
		deads    = flag.String("deadlines", "", "with -pareto: comma-separated deadline grid (default: just -T)")
		pows     = flag.String("powers", "", "with -pareto: comma-separated power-cap grid (default: just -P)")
		batt     = flag.String("battery", "kibam", "with -pareto: battery model scoring the lifetime objective (kibam or peukert)")
		csvOut   = flag.Bool("csv", false, "with -pareto: print the front as CSV instead of a table")
	)
	flag.Parse()

	lib := pchls.Table1()
	if *libPath != "" {
		f, err := os.Open(*libPath)
		if err != nil {
			fatal(err)
		}
		lib, err = pchls.ParseLibrary(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *printLib {
		fmt.Print(lib.Table())
		return
	}
	if *graphArg == "" || *deadline <= 0 {
		fmt.Fprintln(os.Stderr, "usage: pchls -g <benchmark|file.cdfg> -T <cycles> [-P <power>] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	g, err := loadGraph(*graphArg)
	if err != nil {
		fatal(err)
	}

	ccfg := pchls.Config{Workers: *workers}
	switch *windows {
	case "auto":
	case "exhaustive":
		ccfg.Windows = pchls.WindowsExhaustive
	case "sdc":
		ccfg.Windows = pchls.WindowsSDC
	default:
		fatal(fmt.Errorf("-windows %q: want auto, exhaustive or sdc", *windows))
	}
	switch *partit {
	case "auto":
	case "off":
		ccfg.Partition = pchls.PartitionOff
	case "force":
		ccfg.Partition = pchls.PartitionForce
	default:
		fatal(fmt.Errorf("-partition %q: want auto, off or force", *partit))
	}

	if *pareto {
		deadlines := []int{*deadline}
		if *deads != "" {
			deadlines, err = parseIntList(*deads)
			if err != nil {
				fatal(fmt.Errorf("-deadlines: %w", err))
			}
		}
		powers := []float64{*powerMax}
		if *pows != "" {
			powers, err = parseFloatList(*pows)
			if err != nil {
				fatal(fmt.Errorf("-powers: %w", err))
			}
		}
		battery, err := pchls.DefaultBattery(g, lib, *batt)
		if err != nil {
			fatal(err)
		}
		front, err := pchls.SynthesizePareto(g, lib, pchls.ParetoConfig{
			Deadlines: deadlines, Powers: powers, Battery: battery,
			SinglePass: *single, Workers: *workers, Config: ccfg,
		})
		if err != nil {
			fatal(err)
		}
		if *csvOut {
			fmt.Print(front.CSV())
		} else {
			fmt.Printf("%s: %d non-dominated design(s) from %d grid cell(s) (%d feasible), battery %s\n\n",
				front.Benchmark, len(front.Points), front.Evaluated, front.Feasible, *batt)
			fmt.Print(front.Table())
		}
		return
	}

	cons := pchls.Constraints{Deadline: *deadline, PowerMax: *powerMax}
	var d *pchls.Design
	if *portf > 0 {
		var res *pchls.PortfolioResult
		res, err = pchls.SynthesizePortfolio(g, lib, cons, pchls.PortfolioConfig{
			K: *portf, Budget: *budget, Seed: *seed,
			Workers: *workers, Core: ccfg,
		})
		if err == nil {
			d = res.Design
			fmt.Printf("portfolio: %d passes over %d round(s), %d bound-aborted, %d infeasible; %d pass + %d splice improvement(s)\n",
				res.Passes, res.Rounds, res.Aborted, res.Infeasible, res.PassImprovements, res.SpliceImprovements)
			if res.Improved {
				fmt.Printf("portfolio: area %.1f -> %.1f (%.1f%% below the single greedy pass)\n\n",
					res.BaselineArea, d.Area(), 100*res.Gap())
			} else if res.BaselineArea > 0 {
				fmt.Printf("portfolio: matched the single greedy pass (area %.1f)\n\n", res.BaselineArea)
			} else {
				fmt.Printf("portfolio: found a design where the single greedy pass was infeasible\n\n")
			}
		}
	} else {
		synth := pchls.SynthesizeBest
		if *single {
			synth = pchls.Synthesize
		}
		d, err = synth(g, lib, cons, ccfg)
	}
	if err != nil {
		if errors.Is(err, pchls.ErrInfeasible) {
			fmt.Fprintf(os.Stderr, "pchls: infeasible: %v\n", err)
			os.Exit(1)
		}
		fatal(err)
	}
	fmt.Print(d.Report())
	if *verifyD {
		if err := pchls.Verify(d); err != nil {
			fatal(fmt.Errorf("independent validator rejected the design: %w", err))
		}
		fmt.Println("\nverified: precedence, deadline, power cap, instance occupancy, binding compatibility, area accounting")
	}
	if *stats {
		fmt.Println("\nsynthesis work:")
		fmt.Print(d.Stats.String())
	}
	if *profile {
		fmt.Println("\npower profile:")
		fmt.Print(d.Schedule.ProfileString(*powerMax))
	}
	if *dotOut != "" {
		s := d.Schedule
		dot := g.Dot(func(id pchls.NodeID) (int, bool) { return s.Start[id], true })
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(pchls.DesignHTML(d)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *htmlOut)
	}
	if *jsonOut != "" {
		raw, err := d.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *verilog != "" {
		v, err := pchls.EmitVerilog(d, *width)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*verilog, []byte(v), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *verilog)
	}
	if *simulate != "" {
		inputs, err := parseInputs(*simulate)
		if err != nil {
			fatal(err)
		}
		outputs, err := pchls.SimulateDesign(d, inputs)
		if err != nil {
			fatal(err)
		}
		if err := pchls.VerifyDesign(d, inputs); err != nil {
			fatal(fmt.Errorf("FSMD disagrees with data-flow evaluation: %w", err))
		}
		fmt.Println("\nsimulation (FSMD matches data-flow evaluation):")
		names := make([]string, 0, len(outputs))
		for name := range outputs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-12s = %d\n", name, outputs[name])
		}
		if *vcdOut != "" {
			f, err := os.Create(*vcdOut)
			if err != nil {
				fatal(err)
			}
			if err := pchls.DumpVCD(d, inputs, *width, f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *vcdOut)
		}
		if *tbOut != "" {
			tb, err := pchls.EmitTestbench(d, inputs)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*tbOut, []byte(tb), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *tbOut)
		}
	}
}

// parseInputs parses "name=value,name=value" assignments.
// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloatList parses a comma-separated list of floats.
func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInputs(s string) (map[string]int64, error) {
	out := make(map[string]int64)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, valStr, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("pchls: bad input assignment %q (want name=value)", pair)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(valStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pchls: bad input value in %q: %w", pair, err)
		}
		out[strings.TrimSpace(name)] = v
	}
	return out, nil
}

// loadGraph resolves a benchmark name or reads a .cdfg file.
func loadGraph(arg string) (*pchls.Graph, error) {
	if g, err := pchls.Benchmark(arg); err == nil {
		return g, nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, fmt.Errorf("pchls: %q is neither a benchmark name nor a readable file: %w", arg, err)
	}
	defer f.Close()
	return pchls.ParseGraph(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pchls:", err)
	os.Exit(1)
}
