package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseInputs(t *testing.T) {
	in, err := parseInputs("x=3, y=-4 ,dx=0")
	if err != nil {
		t.Fatal(err)
	}
	if in["x"] != 3 || in["y"] != -4 || in["dx"] != 0 {
		t.Fatalf("parsed %v", in)
	}
	if len(in) != 3 {
		t.Fatalf("parsed %d entries", len(in))
	}
	// Trailing commas and empties are tolerated.
	in, err = parseInputs("a=1,,")
	if err != nil || len(in) != 1 {
		t.Fatalf("trailing comma: %v %v", in, err)
	}
	for _, bad := range []string{"x", "x=abc", "=3"} {
		if _, err := parseInputs(bad); err == nil && bad != "=3" {
			t.Errorf("parseInputs(%q) accepted", bad)
		}
	}
}

func TestLoadGraphBenchmarkName(t *testing.T) {
	g, err := loadGraph("hal")
	if err != nil || g.Name != "hal" {
		t.Fatalf("loadGraph(hal): %v %v", g, err)
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.cdfg")
	content := "graph g\nnode a imp\nnode b add\nnode c xpt\nedge a b\nedge b c\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path)
	if err != nil || g.N() != 3 {
		t.Fatalf("loadGraph(file): %v %v", g, err)
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.cdfg")); err == nil {
		t.Fatal("missing file accepted")
	}
}
