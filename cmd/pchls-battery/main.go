// Command pchls-battery regenerates the paper's Figure 1 motivation: the
// undesired (spiky, classical ASAP) power schedule of a benchmark against
// the desired (power-capped, pasap) schedule, and the battery-lifetime
// difference between the two on kinetic (KiBaM) and Peukert battery
// models.
//
// Usage:
//
//	pchls-battery -g hal -P 12
package main

import (
	"flag"
	"fmt"
	"os"

	"pchls"
)

func main() {
	var (
		graphArg = flag.String("g", "hal", "benchmark name or .cdfg file path")
		powerMax = flag.Float64("P", 12, "per-cycle power cap P< of the desired schedule")
		sweep    = flag.Bool("sweep", false, "sweep caps from the floor to the unconstrained peak and report lifetime extensions")
		htmlOut  = flag.String("html", "", "write the Figure 1 reproduction as a self-contained HTML page")
	)
	flag.Parse()

	g, err := pchls.Benchmark(*graphArg)
	if err != nil {
		f, ferr := os.Open(*graphArg)
		if ferr != nil {
			fatal(err)
		}
		g, err = pchls.ParseGraph(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *sweep {
		runSweep(g)
		return
	}
	r, err := pchls.Figure1(g, pchls.Table1(), *powerMax)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Figure 1 reproduction on %q:\n\n", g.Name)
	fmt.Print(r.Report())
	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(pchls.Figure1HTML(r)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *htmlOut)
	}
}

// runSweep scans caps between the library floor and the unconstrained
// peak and prints the lifetime extension per cap.
func runSweep(g *pchls.Graph) {
	lib := pchls.Table1()
	base, err := pchls.ASAP(g, pchls.UniformFastest(lib))
	if err != nil {
		fatal(err)
	}
	peak := base.PeakPower()
	var caps []float64
	for c := peak / 4; c <= peak*1.1; c += peak / 12 {
		caps = append(caps, float64(int(c*10))/10)
	}
	curve, err := pchls.BatterySweep(g, lib, caps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("battery sweep on %q (unconstrained peak %.2f, %d cycles):\n\n",
		g.Name, curve.BasePeak, curve.BaseCycles)
	fmt.Print(curve.CSV())
	if best, ok := curve.BestExtension(); ok {
		fmt.Printf("\nbest: cap %.4g extends KiBaM lifetime by %.1f%% (schedule %d -> %d cycles)\n",
			best.PowerMax, best.KibamExt, curve.BaseCycles, best.StretchCycles)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pchls-battery:", err)
	os.Exit(1)
}
