// Package pchls is a power-constrained high-level synthesis library: it
// schedules, allocates and binds data-flow graphs onto a functional-unit
// library, minimizing datapath area under a latency constraint T and a
// maximum power-per-clock-cycle constraint P<, as in S.F. Nielsen and
// J. Madsen, "Power Constrained High-Level Synthesis of Battery Powered
// Digital Systems", DATE 2003.
//
// The typical flow:
//
//	g := pchls.MustBenchmark("hal")                   // or build/parse a Graph
//	lib := pchls.Table1()                             // the paper's FU library
//	design, err := pchls.SynthesizeBest(g, lib, pchls.Constraints{
//	        Deadline: 10,                             // T, clock cycles
//	        PowerMax: 20,                             // P<, per-cycle power
//	}, pchls.Config{})
//	fmt.Println(design.Report())
//	verilog, err := pchls.EmitVerilog(design, 16)     // RTL back end
//
// Beyond synthesis, the package exposes the building blocks: the CDFG
// substrate, the power-constrained pasap/palap schedulers and classical
// baselines, battery models for lifetime evaluation, and the experiment
// harness that regenerates the paper's figures.
package pchls

import (
	"context"
	"io"

	"pchls/internal/bench"
	"pchls/internal/bind"
	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/explore"
	"pchls/internal/gen"
	"pchls/internal/library"
	"pchls/internal/pipeline"
	"pchls/internal/portfolio"
	"pchls/internal/power"
	"pchls/internal/report"
	"pchls/internal/rtl"
	"pchls/internal/sched"
	"pchls/internal/verify"
)

// Data-flow graph substrate.
type (
	// Graph is a data-flow graph of primitive operations.
	Graph = cdfg.Graph
	// Node is one operation instance in a Graph.
	Node = cdfg.Node
	// NodeID identifies a node within one Graph.
	NodeID = cdfg.NodeID
	// Op is a primitive operation kind.
	Op = cdfg.Op
)

// The operation alphabet (matching the paper's Table 1 rows).
const (
	// Add is two's-complement addition ("+").
	Add = cdfg.Add
	// Sub is subtraction ("-").
	Sub = cdfg.Sub
	// Cmp is magnitude comparison (">").
	Cmp = cdfg.Cmp
	// Mul is multiplication ("*").
	Mul = cdfg.Mul
	// Input is an input transfer ("imp").
	Input = cdfg.Input
	// Output is an output transfer ("xpt").
	Output = cdfg.Output
)

// NewGraph returns an empty data-flow graph with the given name.
func NewGraph(name string) *Graph { return cdfg.New(name) }

// ParseGraph reads a graph in the line-oriented .cdfg text format
// ("graph <name>" / "node <name> <op>" / "edge <from> <to>").
func ParseGraph(r io.Reader) (*Graph, error) { return cdfg.Parse(r) }

// ParseGraphString is ParseGraph over a string.
func ParseGraphString(s string) (*Graph, error) { return cdfg.ParseString(s) }

// ParseGraphJSON decodes and validates a graph from the JSON schema used
// by the synthesis service's request payloads ({"name", "nodes", "edges"}).
// Graphs also marshal back to that schema via encoding/json.
func ParseGraphJSON(data []byte) (*Graph, error) { return cdfg.ParseJSON(data) }

// Functional-unit library.
type (
	// Library is a validated collection of functional-unit modules.
	Library = library.Library
	// Module describes one functional-unit type.
	Module = library.Module
	// OperatingPoint is one voltage operating point of a module: the
	// delay and per-cycle power the module exhibits at that supply
	// voltage.
	OperatingPoint = library.OperatingPoint
)

// Table1 returns the paper's functional-unit library (Table 1): add, sub,
// comp, ALU, serial and parallel multipliers, input and output units.
func Table1() *Library { return library.Table1() }

// NewLibrary builds a validated library from modules.
func NewLibrary(modules []Module) (*Library, error) { return library.New(modules) }

// ParseLibrary reads a library in the text format
// ("module <name> <op>[,<op>...] <area> <delay> <power>").
func ParseLibrary(r io.Reader) (*Library, error) { return library.Parse(r) }

// ParseLibraryJSON decodes and validates a library from the JSON module
// list used by the synthesis service's request payloads. Libraries also
// marshal back to that schema via encoding/json.
func ParseLibraryJSON(data []byte) (*Library, error) { return library.ParseJSON(data) }

// Benchmarks.

// Benchmark returns a named benchmark CDFG: "hal", "cosine", "elliptic"
// (the paper's Figure 2 set) or "fir16", "ar", "diffeq2", "fft8".
func Benchmark(name string) (*Graph, error) { return bench.ByName(name) }

// MustBenchmark is Benchmark that panics on unknown names.
func MustBenchmark(name string) *Graph {
	g, err := bench.ByName(name)
	if err != nil {
		panic(err)
	}
	return g
}

// BenchmarkNames lists the available benchmark names in a fixed order.
func BenchmarkNames() []string {
	return []string{"hal", "cosine", "elliptic", "fir16", "ar", "diffeq2", "fft8"}
}

// Synthesis.
type (
	// Constraints are the latency (Deadline, cycles) and per-cycle power
	// (PowerMax; <= 0 disables) constraints.
	Constraints = core.Constraints
	// Config tunes the synthesizer (cost model, ablation switches).
	Config = core.Config
	// Design is a complete synthesis result: schedule, allocation,
	// binding, datapath and area breakdown.
	Design = core.Design
	// Decision is one committed synthesis step.
	Decision = core.Decision
	// Stats counts the work a synthesis run performed: full scheduler
	// executions, incremental (pinned) runs, window-cache effectiveness and
	// invalidations, and power-profile probes. Available on Design.Stats
	// and aggregated over sweeps via Curve.TotalStats/Surface.TotalStats.
	Stats = core.Stats
	// CostModel holds register/multiplexer area coefficients.
	CostModel = bind.CostModel
	// WindowPolicy selects how candidate mobility windows are derived
	// (Config.Windows): exhaustive per-candidate scheduler pairs, the
	// O(V+E) SDC difference-constraint sweep, or automatic by graph size.
	WindowPolicy = core.WindowPolicy
	// PartitionPolicy selects hierarchical decomposition into
	// weakly-connected regions (Config.Partition).
	PartitionPolicy = core.PartitionPolicy
)

// Window and partition policies for Config.Windows / Config.Partition.
const (
	// WindowsAuto picks exhaustive windows for small graphs and the SDC
	// sweep above the size threshold (the default).
	WindowsAuto = core.WindowsAuto
	// WindowsExhaustive forces the per-candidate scheduler pairs.
	WindowsExhaustive = core.WindowsExhaustive
	// WindowsSDC forces the difference-constraint window derivation.
	WindowsSDC = core.WindowsSDC
	// PartitionAuto decomposes large graphs (the default): along component
	// boundaries when disconnected, along a balanced min edge cut when
	// connected.
	PartitionAuto = core.PartitionAuto
	// PartitionOff always synthesizes monolithically.
	PartitionOff = core.PartitionOff
	// PartitionForce decomposes regardless of size: by components when the
	// graph is disconnected, by min cut when it is connected.
	PartitionForce = core.PartitionForce
)

// Synthesis errors (match with errors.Is).
var (
	// ErrInfeasible indicates no design satisfies the constraints within
	// the heuristic's search space.
	ErrInfeasible = core.ErrInfeasible
	// ErrUncovered indicates the library lacks a module for some
	// operation of the graph.
	ErrUncovered = core.ErrUncovered
)

// Parse errors (match with errors.Is). The graph and library parsers —
// text and JSON alike — classify every structural reject with one of
// these sentinels.
var (
	// ErrDuplicateName marks a reused node name.
	ErrDuplicateName = cdfg.ErrDuplicateName
	// ErrCycle marks a directed cycle in the graph.
	ErrCycle = cdfg.ErrCycle
	// ErrSelfLoop marks an edge whose endpoints coincide.
	ErrSelfLoop = cdfg.ErrSelfLoop
	// ErrDuplicateEdge marks a repeated edge declaration.
	ErrDuplicateEdge = cdfg.ErrDuplicateEdge
	// ErrUnknownNode marks an edge referencing an undeclared node.
	ErrUnknownNode = cdfg.ErrUnknownNode
	// ErrBadDelay marks a library module whose delay is below one cycle.
	ErrBadDelay = library.ErrBadDelay
	// ErrBadArea marks a library module with a negative or non-finite area.
	ErrBadArea = library.ErrBadArea
	// ErrBadPower marks a library module with a negative or non-finite power.
	ErrBadPower = library.ErrBadPower
	// ErrDuplicateModule marks a reused library module name.
	ErrDuplicateModule = library.ErrDuplicateModule
	// ErrBadVoltage marks an operating point with a non-positive or
	// non-finite supply voltage.
	ErrBadVoltage = library.ErrBadVoltage
	// ErrDuplicateLevel marks a module declaring the same voltage twice.
	ErrDuplicateLevel = library.ErrDuplicateLevel
	// ErrUnknownLevelModule marks a level line naming an undefined module.
	ErrUnknownLevelModule = library.ErrUnknownLevelModule
)

// Synthesize runs the paper's one-pass combined scheduling/allocation/
// binding algorithm.
func Synthesize(g *Graph, lib *Library, cons Constraints, cfg Config) (*Design, error) {
	return core.Synthesize(g, lib, cons, cfg)
}

// SynthesizeBest wraps Synthesize with a starting-point portfolio and
// peak-shaving meta-heuristics; it is the recommended entry point. Its
// independent synthesis runs are evaluated concurrently per Config.Workers
// (0 = GOMAXPROCS, 1 = serial); the result is identical for every setting.
func SynthesizeBest(g *Graph, lib *Library, cons Constraints, cfg Config) (*Design, error) {
	return core.SynthesizeBest(g, lib, cons, cfg)
}

// SynthesizeBestContext is SynthesizeBest with cancellation: ctx aborts the
// portfolio between synthesis runs.
func SynthesizeBestContext(ctx context.Context, g *Graph, lib *Library, cons Constraints, cfg Config) (*Design, error) {
	return core.SynthesizeBestContext(ctx, g, lib, cons, cfg)
}

// DefaultCostModel returns the register/mux area coefficients used by the
// experiments.
func DefaultCostModel() CostModel { return bind.DefaultCostModel() }

// Anytime portfolio synthesis.
type (
	// PortfolioConfig tunes the anytime portfolio: passes per round (K),
	// round budget, perturbation seed, subgraph and expansion limits,
	// worker count, and the base engine Config every pass derives from.
	PortfolioConfig = portfolio.Config
	// PortfolioResult is a portfolio outcome: the best verified design
	// plus baseline QoR and search statistics (passes, incumbent
	// adoptions, bound aborts, splice improvements).
	PortfolioResult = portfolio.Result
)

// SynthesizePortfolio runs the anytime, feedback-guided portfolio: K
// perturbed greedy passes per round race the incumbent area bound in
// parallel, then the incumbent's worst-mobility / highest-area subgraph
// is re-synthesized exhaustively and spliced back. Every adopted design
// passes the independent validator, and when the single greedy pass is
// feasible the portfolio's total area is never worse than it. The result
// is a pure function of (inputs, cfg) — byte-identical for every worker
// count and across repeated runs with the same Seed.
func SynthesizePortfolio(g *Graph, lib *Library, cons Constraints, cfg PortfolioConfig) (*PortfolioResult, error) {
	return portfolio.Synthesize(g, lib, cons, cfg)
}

// SynthesizePortfolioContext is SynthesizePortfolio with cancellation:
// ctx aborts the portfolio between synthesis runs.
func SynthesizePortfolioContext(ctx context.Context, g *Graph, lib *Library, cons Constraints, cfg PortfolioConfig) (*PortfolioResult, error) {
	return portfolio.SynthesizeContext(ctx, g, lib, cons, cfg)
}

// Scheduling building blocks.
type (
	// Schedule maps every node to a start cycle with module-implied delay
	// and power.
	Schedule = sched.Schedule
	// ScheduleOptions parameterizes the power-constrained schedulers.
	ScheduleOptions = sched.Options
	// Binding chooses the module executing each node during scheduling.
	Binding = sched.Binding
	// Window is a feasible start-time interval.
	Window = sched.Window
)

// ASAP computes the classical unconstrained as-soon-as-possible schedule.
func ASAP(g *Graph, bind Binding) (*Schedule, error) { return sched.ASAP(g, bind) }

// ALAP computes the classical as-late-as-possible schedule under deadline.
func ALAP(g *Graph, bind Binding, deadline int) (*Schedule, error) {
	return sched.ALAP(g, bind, deadline)
}

// PASAP computes the paper's power-constrained ASAP schedule.
func PASAP(g *Graph, bind Binding, opts ScheduleOptions) (*Schedule, error) {
	return sched.PASAP(g, bind, opts)
}

// PALAP computes the paper's power-constrained ALAP schedule.
func PALAP(g *Graph, bind Binding, deadline int, opts ScheduleOptions) (*Schedule, error) {
	return sched.PALAP(g, bind, deadline, opts)
}

// UniformFastest binds every node to the fastest implementing module.
func UniformFastest(lib *Library) Binding { return sched.UniformFastest(lib) }

// UniformSmallest binds every node to the smallest implementing module.
func UniformSmallest(lib *Library) Binding { return sched.UniformSmallest(lib) }

// Battery and profile analysis.
type (
	// Battery simulates discharge under a repeated power profile.
	Battery = power.Battery
	// ProfileStats summarizes a per-cycle power profile.
	ProfileStats = power.Stats
	// LifetimeComparison reports two profiles' lifetimes on one battery.
	LifetimeComparison = power.Comparison
)

// NewKiBaM builds a kinetic battery model (capacity, available fraction c
// in (0,1), equalization rate k in (0,1]).
func NewKiBaM(capacity, c, k float64) (Battery, error) { return power.NewKiBaM(capacity, c, k) }

// NewPeukert builds a Peukert's-law battery (capacity, exponent >= 1).
func NewPeukert(capacity, exponent float64) (Battery, error) {
	return power.NewPeukert(capacity, exponent)
}

// AnalyzeProfile computes power-profile statistics.
func AnalyzeProfile(profile []float64) ProfileStats { return power.Analyze(profile) }

// CompareLifetime runs two profiles on a battery (A first, B second).
func CompareLifetime(b Battery, profileA, profileB []float64, maxPeriods int) (LifetimeComparison, error) {
	return power.Compare(b, profileA, profileB, maxPeriods)
}

// Experiments.
type (
	// SweepConfig parameterizes an area-versus-power sweep.
	SweepConfig = explore.SweepConfig
	// Curve is one area-versus-power series at fixed T.
	Curve = explore.Curve
	// CurvePoint is one sweep sample.
	CurvePoint = explore.Point
	// Figure1Result packages the Figure 1 reproduction.
	Figure1Result = explore.Figure1Result
)

// Sweep synthesizes the graph across a power grid at fixed deadline. Grid
// points are synthesized concurrently per cfg.Workers (0 = GOMAXPROCS,
// 1 = serial); the curve is byte-identical for every setting.
func Sweep(g *Graph, lib *Library, deadline int, cfg SweepConfig) (Curve, error) {
	return explore.Sweep(g, lib, deadline, cfg)
}

// SweepContext is Sweep with cancellation: ctx aborts the sweep between
// synthesis runs.
func SweepContext(ctx context.Context, g *Graph, lib *Library, deadline int, cfg SweepConfig) (Curve, error) {
	return explore.SweepContext(ctx, g, lib, deadline, cfg)
}

// PlotCurves renders curves as a terminal ASCII plot in the style of the
// paper's Figure 2.
func PlotCurves(curves []Curve, width, height int) string {
	return explore.Plot(curves, width, height)
}

// Figure1 reproduces the paper's Figure 1 motivation on a benchmark.
func Figure1(g *Graph, lib *Library, powerMax float64) (*Figure1Result, error) {
	return explore.Figure1(g, lib, powerMax)
}

// Battery-sweep experiment types.
type (
	// BatteryCurve is the lifetime-extension-versus-power-cap series.
	BatteryCurve = explore.BatteryCurve
	// BatteryPoint is one battery sweep sample.
	BatteryPoint = explore.BatteryPoint
)

// BatterySweep measures, for each cap, the battery-lifetime extension of
// the pasap-capped schedule over the unconstrained one. Caps are evaluated
// concurrently (GOMAXPROCS workers); the curve matches the serial order.
func BatterySweep(g *Graph, lib *Library, caps []float64) (BatteryCurve, error) {
	return explore.BatterySweep(g, lib, caps)
}

// BatterySweepContext is BatterySweep with cancellation and an explicit
// worker count (0 = GOMAXPROCS, 1 = serial).
func BatterySweepContext(ctx context.Context, g *Graph, lib *Library, caps []float64, workers int) (BatteryCurve, error) {
	return explore.BatterySweepContext(ctx, g, lib, caps, workers)
}

// Time-power surface types.
type (
	// Surface is an area grid over the time-power-constraint space.
	Surface = explore.Surface
	// SurfaceConfig parameterizes a surface exploration.
	SurfaceConfig = explore.SurfaceConfig
	// SurfacePoint is one (deadline, power, area) sample.
	SurfacePoint = explore.SurfacePoint
)

// ExploreSurface synthesizes the graph over a (deadline x power) grid —
// the "different regions in the time-power-constraint space" of the
// paper's conclusion. Cells are synthesized concurrently per cfg.Workers
// (0 = GOMAXPROCS, 1 = serial); the surface is byte-identical for every
// setting.
func ExploreSurface(g *Graph, lib *Library, cfg SurfaceConfig) (Surface, error) {
	return explore.ExploreSurface(g, lib, cfg)
}

// ExploreSurfaceContext is ExploreSurface with cancellation: ctx aborts the
// exploration between synthesis runs.
func ExploreSurfaceContext(ctx context.Context, g *Graph, lib *Library, cfg SurfaceConfig) (Surface, error) {
	return explore.ExploreSurfaceContext(ctx, g, lib, cfg)
}

// Multi-objective Pareto exploration.
type (
	// ParetoFront is the non-dominated set over (area, latency, peak
	// power, battery lifetime).
	ParetoFront = explore.ParetoFront
	// ParetoConfig parameterizes a multi-objective exploration.
	ParetoConfig = explore.ParetoConfig
	// ParetoPoint is one non-dominated design with its objectives.
	ParetoPoint = explore.ParetoPoint
)

// SynthesizePareto sweeps the constraint grid and returns the
// non-dominated designs over (functional-unit area, latency, peak
// per-cycle power, battery lifetime). With a voltage-scaling library the
// synthesizer picks operating points per operation, exposing the trades
// dynamic voltage scaling opens up; cfg.Battery (default: KiBaM sized at
// 50x one unconstrained schedule period) scores the lifetime objective.
func SynthesizePareto(g *Graph, lib *Library, cfg ParetoConfig) (ParetoFront, error) {
	return explore.ExplorePareto(g, lib, cfg)
}

// SynthesizeParetoContext is SynthesizePareto with cancellation: ctx
// aborts the exploration between synthesis runs.
func SynthesizeParetoContext(ctx context.Context, g *Graph, lib *Library, cfg ParetoConfig) (ParetoFront, error) {
	return explore.ExploreParetoContext(ctx, g, lib, cfg)
}

// DefaultBattery builds the battery model SynthesizePareto uses when the
// config carries none: model "kibam" (or "") or "peukert", with capacity
// 50x the energy of one unconstrained ASAP schedule period.
func DefaultBattery(g *Graph, lib *Library, model string) (Battery, error) {
	return explore.DefaultBattery(g, lib, model)
}

// Pipelined (loop-folded) implementations — an extension beyond the paper.
type (
	// PipelineResult is one modulo-scheduled pipelined implementation.
	PipelineResult = pipeline.Result
)

// PipelineSchedule computes a power-constrained modulo schedule at the
// given initiation interval: successive loop iterations start every II
// cycles and the power cap applies to the folded steady-state profile.
func PipelineSchedule(g *Graph, bind Binding, lib *Library, ii, deadline int, powerMax float64) (*PipelineResult, error) {
	return pipeline.Schedule(g, bind, lib, ii, deadline, powerMax)
}

// PipelineExplore sweeps initiation intervals from the power-implied
// minimum up to maxII, returning the feasible throughput/area/power
// trade-off points.
func PipelineExplore(g *Graph, bind Binding, lib *Library, maxII, deadline int, powerMax float64) ([]*PipelineResult, error) {
	return pipeline.Explore(g, bind, lib, maxII, deadline, powerMax)
}

// PipelineMinII returns the smallest initiation interval the power cap
// could possibly admit (energy per iteration / cap).
func PipelineMinII(g *Graph, bind Binding, powerMax float64) (int, error) {
	return pipeline.MinII(g, bind, powerMax)
}

// EmitVerilog generates the FSMD implementation of a design and renders it
// as a Verilog-2001 subset module with the given datapath width (16 when
// width <= 0).
func EmitVerilog(d *Design, width int) (string, error) {
	m, err := rtl.Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, width)
	if err != nil {
		return "", err
	}
	return m.Verilog(), nil
}

// SimulateDesign executes the design's FSMD implementation cycle by cycle
// on concrete inputs (keyed by Input node name) and returns the values on
// the output ports (keyed by Output node name).
func SimulateDesign(d *Design, inputs map[string]int64) (map[string]int64, error) {
	m, err := rtl.Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 0)
	if err != nil {
		return nil, err
	}
	return rtl.Simulate(m, inputs)
}

// Verify checks a design against every constraint invariant of the paper
// with an independent validator (internal/verify) that shares no code
// with the synthesis engine: precedence edges respected, makespan <= T,
// per-cycle power <= P<, exclusive module-instance occupancy, binding
// type-compatibility, and functional-unit area accounting. A nil return
// means the design is a correct solution of its stated problem; the
// returned error joins every violation, each matchable with errors.Is
// against the verify package's sentinel errors.
//
// Verify validates constraint satisfaction; VerifyDesign validates
// functional behaviour (FSMD simulation against data-flow evaluation).
// The two are complementary.
func Verify(d *Design) error { return verify.Check(core.VerifyInput(d)) }

// Validator violation classes (match with errors.Is against Verify's
// return).
var (
	// ErrVerifyPrecedence: a consumer starts before its producer ends.
	ErrVerifyPrecedence = verify.ErrPrecedence
	// ErrVerifyDeadline: the makespan exceeds T.
	ErrVerifyDeadline = verify.ErrDeadline
	// ErrVerifyPower: some cycle exceeds P<.
	ErrVerifyPower = verify.ErrPower
	// ErrVerifyOverlap: two operations overlap on one instance.
	ErrVerifyOverlap = verify.ErrOverlap
	// ErrVerifyBinding: an operation is bound to an incompatible module.
	ErrVerifyBinding = verify.ErrBinding
	// ErrVerifyArea: reported FU area disagrees with the allocation.
	ErrVerifyArea = verify.ErrArea
	// ErrVerifyLevel: a voltage-level violation — an undefined operating
	// point, or one instance claimed at two supply voltages.
	ErrVerifyLevel = verify.ErrLevel
)

// Random-instance generation (property testing and cdfgtool gen).
type (
	// GenGraphConfig parameterizes RandomGraph.
	GenGraphConfig = gen.GraphConfig
	// GenLibraryConfig parameterizes RandomLibrary.
	GenLibraryConfig = gen.LibraryConfig
	// GenPreset names a ready-made DAG-shape recipe for RandomGraph
	// (chain, wide, layered, mixed, blocks).
	GenPreset = gen.Preset
)

// GenPresets lists the known graph-shape presets in a fixed order.
func GenPresets() []GenPreset { return gen.Presets() }

// GenPresetConfig returns the GenGraphConfig of the named preset sized
// to the given computation-node count.
func GenPresetConfig(p GenPreset, nodes int) (GenGraphConfig, error) {
	return gen.PresetConfig(p, nodes)
}

// RandomGraph generates a random layered CDFG fully determined by
// (seed, cfg); the result always passes validation.
func RandomGraph(seed int64, cfg GenGraphConfig) *Graph { return gen.Graph(seed, cfg) }

// RandomLibrary generates a random validated functional-unit library
// fully determined by (seed, cfg); it covers every operation.
func RandomLibrary(seed int64, cfg GenLibraryConfig) *Library { return gen.Library(seed, cfg) }

// VerifyDesign checks the design end to end: the FSMD simulation must
// agree with the direct data-flow evaluation of the source graph on the
// given inputs.
func VerifyDesign(d *Design, inputs map[string]int64) error {
	m, err := rtl.Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 0)
	if err != nil {
		return err
	}
	return rtl.Verify(m, inputs)
}

// DumpVCD simulates the design's FSMD and writes a Value Change Dump
// waveform trace (controller state, registers, outputs) to w.
func DumpVCD(d *Design, inputs map[string]int64, width int, w io.Writer) error {
	m, err := rtl.Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, width)
	if err != nil {
		return err
	}
	return rtl.DumpVCD(m, inputs, w)
}

// EmitTestbench generates a self-checking Verilog testbench that drives
// the design's FSMD with the given inputs and asserts the outputs expected
// from data-flow evaluation.
func EmitTestbench(d *Design, inputs map[string]int64) (string, error) {
	m, err := rtl.Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
	if err != nil {
		return "", err
	}
	return rtl.Testbench(m, inputs)
}

// SynthesizeCliquePartition is the static one-shot clique-partitioning
// variant (windows derived once, no per-decision re-derivation) kept as an
// ablation baseline; prefer Synthesize or SynthesizeBest.
func SynthesizeCliquePartition(g *Graph, lib *Library, cons Constraints, cfg Config) (*Design, error) {
	return core.SynthesizeCliquePartition(g, lib, cons, cfg)
}

// Time sweeps (the orthogonal cut through the time-power space).
type (
	// TimeSweepConfig parameterizes an area-versus-latency sweep.
	TimeSweepConfig = explore.TimeSweepConfig
	// TimeCurve is one area-versus-latency series at fixed P<.
	TimeCurve = explore.TimeCurve
)

// TimeSweep synthesizes the graph across a deadline grid at a fixed power
// constraint. Grid points are synthesized concurrently per cfg.Workers
// (0 = GOMAXPROCS, 1 = serial); the curve is byte-identical for every
// setting.
func TimeSweep(g *Graph, lib *Library, powerMax float64, cfg TimeSweepConfig) (TimeCurve, error) {
	return explore.TimeSweep(g, lib, powerMax, cfg)
}

// TimeSweepContext is TimeSweep with cancellation: ctx aborts the sweep
// between synthesis runs.
func TimeSweepContext(ctx context.Context, g *Graph, lib *Library, powerMax float64, cfg TimeSweepConfig) (TimeCurve, error) {
	return explore.TimeSweepContext(ctx, g, lib, powerMax, cfg)
}

// DesignHTML renders a self-contained HTML report of a design: headline
// metrics, a Gantt chart of the schedule, the power profile against the
// constraint, the area breakdown and the decision log.
func DesignHTML(d *Design) string { return report.DesignHTML(d) }

// SweepHTML renders a self-contained HTML report of area-versus-power
// curves (the Figure 2 reproduction).
func SweepHTML(curves []Curve) string { return report.SweepHTML(curves) }

// Figure1HTML renders the Figure 1 reproduction (both power profiles and
// the battery-lifetime table) as a self-contained HTML page.
func Figure1HTML(r *Figure1Result) string { return report.Figure1HTML(r) }

// SurfaceHTML renders the time-power surface as an HTML heatmap with the
// Pareto front marked.
func SurfaceHTML(s Surface) string { return report.SurfaceHTML(s) }
