package pchls

import (
	"errors"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	g := MustBenchmark("hal")
	lib := Table1()
	d, err := SynthesizeBest(g, lib, Constraints{Deadline: 10, PowerMax: 20}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Schedule.Length() > 10 || d.Schedule.PeakPower() > 20 {
		t.Fatalf("constraints violated: len %d peak %.2f", d.Schedule.Length(), d.Schedule.PeakPower())
	}
	v, err := EmitVerilog(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "module hal") {
		t.Fatal("verilog missing module header")
	}
}

func TestFacadeGraphConstruction(t *testing.T) {
	g := NewGraph("t")
	i := g.MustAddNode("i", Input)
	m := g.MustAddNode("m", Mul)
	o := g.MustAddNode("o", Output)
	g.MustAddEdge(i, m)
	g.MustAddEdge(m, o)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := Synthesize(g, Table1(), Constraints{Deadline: 6}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Area() <= 0 {
		t.Fatal("zero area")
	}
}

func TestFacadeParseRoundTrip(t *testing.T) {
	g, err := ParseGraphString("graph g\nnode a imp\nnode b add\nedge a b\n")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseGraphString(g.Text())
	if err != nil || g2.N() != 2 {
		t.Fatalf("round trip: %v %v", g2, err)
	}
}

func TestFacadeLibrary(t *testing.T) {
	lib, err := ParseLibrary(strings.NewReader("module alu +,- 90 1 2.0\nmodule in imp 16 1 0.2\nmodule out xpt 16 1 1.7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 3 {
		t.Fatalf("%d modules", lib.Len())
	}
	mods := Table1().Modules()
	lib2, err := NewLibrary(mods)
	if err != nil || lib2.Len() != 8 {
		t.Fatalf("NewLibrary: %v %v", lib2, err)
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	for _, name := range BenchmarkNames() {
		g, err := Benchmark(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBenchmark should panic on unknown name")
		}
	}()
	MustBenchmark("nope")
}

func TestFacadeSchedulers(t *testing.T) {
	g := MustBenchmark("hal")
	lib := Table1()
	asap, err := ASAP(g, UniformFastest(lib))
	if err != nil {
		t.Fatal(err)
	}
	alap, err := ALAP(g, UniformFastest(lib), asap.Length()+3)
	if err != nil {
		t.Fatal(err)
	}
	if alap.Length() > asap.Length()+3 {
		t.Fatal("alap exceeded deadline")
	}
	pasap, err := PASAP(g, UniformSmallest(lib), ScheduleOptions{PowerMax: 6})
	if err != nil {
		t.Fatal(err)
	}
	if pasap.PeakPower() > 6 {
		t.Fatalf("pasap peak %.2f", pasap.PeakPower())
	}
	palap, err := PALAP(g, UniformSmallest(lib), pasap.Length()+4, ScheduleOptions{PowerMax: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := palap.Validate(6, pasap.Length()+4); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBatteryAndProfiles(t *testing.T) {
	kb, err := NewKiBaM(1000, 0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := NewPeukert(1000, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	spiky := []float64{20, 1, 1, 1}
	flat := []float64{6, 6, 6, 5}
	for _, b := range []Battery{kb, pk} {
		cmp, err := CompareLifetime(b, spiky, flat, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if cmp.ExtensionPercent() <= 0 {
			t.Fatalf("flat profile should extend lifetime: %+v", cmp)
		}
	}
	if s := AnalyzeProfile(spiky); s.Peak != 20 || s.Energy != 23 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFacadeSweepAndPlot(t *testing.T) {
	c, err := Sweep(MustBenchmark("hal"), Table1(), 17, SweepConfig{PowerMin: 5, PowerMax: 25, Step: 5, SinglePass: true})
	if err != nil {
		t.Fatal(err)
	}
	out := PlotCurves([]Curve{c}, 60, 12)
	if !strings.Contains(out, "hal (T=17)") {
		t.Fatalf("plot missing legend:\n%s", out)
	}
}

func TestFacadeFigure1(t *testing.T) {
	r, err := Figure1(MustBenchmark("hal"), Table1(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kibam.ExtensionPercent() <= 0 {
		t.Fatal("no lifetime extension")
	}
}

func TestFacadeErrors(t *testing.T) {
	g := MustBenchmark("hal")
	_, err := Synthesize(g, Table1(), Constraints{Deadline: 20, PowerMax: 0.5}, Config{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	if DefaultCostModel().RegisterArea <= 0 {
		t.Fatal("bad default cost model")
	}
}
