// Design-space exploration: sweep the per-cycle power constraint for a
// benchmark at two time constraints and plot area versus power — the
// experiment behind the paper's Figure 2, driven through the public API.
//
// Run with: go run ./examples/design_space
package main

import (
	"fmt"
	"log"

	"pchls"
)

func main() {
	lib := pchls.Table1()
	cfg := pchls.SweepConfig{PowerMin: 5, PowerMax: 40, Step: 2.5}

	var curves []pchls.Curve
	for _, deadline := range []int{10, 17} {
		g := pchls.MustBenchmark("hal")
		curve, err := pchls.Sweep(g, lib, deadline, cfg)
		if err != nil {
			log.Fatal(err)
		}
		curves = append(curves, curve)

		knee, ok := curve.Knee()
		if !ok {
			fmt.Printf("%s: infeasible everywhere on the grid\n", curve.Label())
			continue
		}
		plateau, _ := curve.PlateauArea()
		fmt.Printf("%s: feasible from P< = %g; plateau area %.1f\n",
			curve.Label(), knee, plateau)
		for _, p := range curve.Points {
			if p.Feasible {
				fmt.Printf("  P<=%5.1f  area %7.1f  (peak %5.2f, %d FUs, %d regs)\n",
					p.Power, p.Area, p.Peak, p.FUs, p.Registers)
			}
		}
	}

	fmt.Println()
	fmt.Println(pchls.PlotCurves(curves, 78, 20))
	fmt.Println("The tighter deadline (T=10) needs fast parallel multipliers and")
	fmt.Println("more concurrency, so it sits above T=17 at every power budget and")
	fmt.Println("hits infeasibility at a higher power knee — the Figure 2 story.")
}
