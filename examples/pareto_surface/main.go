// Pareto surface: explore the full two-dimensional time-power-constraint
// space of a benchmark — the space the paper's evaluation investigates
// "different regions" of — and print the area matrix plus the Pareto-
// optimal (latency, power, area) trade-off points.
//
// Run with: go run ./examples/pareto_surface
package main

import (
	"fmt"
	"log"

	"pchls"
)

func main() {
	g := pchls.MustBenchmark("elliptic")
	lib := pchls.Table1()

	surface, err := pchls.ExploreSurface(g, lib, pchls.SurfaceConfig{
		Deadlines:  []int{18, 20, 22, 26, 30},
		Powers:     []float64{8, 10, 12, 15, 20, 30},
		SinglePass: true, // one-pass synthesis keeps the grid fast
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("area over the time-power space of %q:\n\n", g.Name)
	fmt.Println(surface.Table())

	fmt.Println("Pareto-optimal designs (no point is better on every axis):")
	for _, p := range surface.ParetoFront() {
		fmt.Printf("  T=%-3d cycles, P< = %-5g -> area %.0f\n", p.Deadline, p.Power, p.Area)
	}
	fmt.Println()
	fmt.Println("Reading the matrix: area falls monotonically toward the loose")
	fmt.Println("corner (long deadline, generous power); the '-' cells mark the")
	fmt.Println("infeasible tight corner. A designer picks a point on the front.")
}
