// RTL export: synthesize the elliptic wave filter under its Figure 2
// constraints, emit the FSMD implementation as Verilog, and print the
// datapath structure.
//
// Run with: go run ./examples/rtl_export
package main

import (
	"fmt"
	"log"
	"os"

	"pchls"
)

func main() {
	g := pchls.MustBenchmark("elliptic")
	lib := pchls.Table1()

	design, err := pchls.SynthesizeBest(g, lib, pchls.Constraints{
		Deadline: 22, // the paper's elliptic (T=22) point
		PowerMax: 15,
	}, pchls.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %s: area %.1f, %d FUs, %d registers, %d cycles\n",
		g.Name, design.Area(), len(design.FUs),
		len(design.Datapath.Registers), design.Schedule.Length())
	fmt.Print(design.Datapath.Report(g))

	verilog, err := pchls.EmitVerilog(design, 16)
	if err != nil {
		log.Fatal(err)
	}
	const out = "elliptic.v"
	if err := os.WriteFile(out, []byte(verilog), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d bytes)\n", out, len(verilog))

	// Show the module header and the first control steps.
	lines := 0
	for _, line := range splitLines(verilog) {
		fmt.Println(line)
		lines++
		if lines > 30 {
			fmt.Println("  ... (truncated; see", out, "for the full module)")
			break
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
