// Quickstart: synthesize the HAL differential-equation benchmark under a
// latency constraint of 10 cycles and a per-cycle power cap of 20 units,
// then print the full design report.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pchls"
)

func main() {
	// The HAL benchmark: one Euler step of y'' + 3xy' + 3y = 0, the
	// classical high-level-synthesis example (20 nodes).
	g := pchls.MustBenchmark("hal")

	// The paper's functional-unit library (Table 1): adders, an ALU, a
	// slow/low-power serial multiplier, a fast/high-power parallel
	// multiplier, and I/O units.
	lib := pchls.Table1()

	design, err := pchls.SynthesizeBest(g, lib, pchls.Constraints{
		Deadline: 10, // T: finish within 10 clock cycles
		PowerMax: 20, // P<: never draw more than 20 power units per cycle
	}, pchls.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(design.Report())
	fmt.Printf("\nresult: area %.1f with %d functional units and %d registers\n",
		design.Area(), len(design.FUs), len(design.Datapath.Registers))
	fmt.Printf("peak power %.2f (cap %.2f), makespan %d cycles (cap %d)\n",
		design.Schedule.PeakPower(), design.Cons.PowerMax,
		design.Schedule.Length(), design.Cons.Deadline)
}
