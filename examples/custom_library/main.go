// Custom library: build a user-defined data-flow graph (a 4-tap FIR
// filter) and synthesize it against two different functional-unit
// libraries — the paper's Table 1 and a custom library with a pipelined
// MAC-style multiplier — to compare the area/power trade-offs.
//
// Run with: go run ./examples/custom_library
package main

import (
	"fmt"
	"log"
	"strings"

	"pchls"
)

// buildFIR4 constructs y = sum(c_i * x_i) over 4 taps with explicit
// input/output transfer nodes.
func buildFIR4() *pchls.Graph {
	g := pchls.NewGraph("fir4")
	var products []pchls.NodeID
	for i := 0; i < 4; i++ {
		x := g.MustAddNode(fmt.Sprintf("x%d", i), pchls.Input)
		m := g.MustAddNode(fmt.Sprintf("m%d", i), pchls.Mul)
		g.MustAddEdge(x, m)
		products = append(products, m)
	}
	a0 := g.MustAddNode("a0", pchls.Add)
	g.MustAddEdge(products[0], a0)
	g.MustAddEdge(products[1], a0)
	a1 := g.MustAddNode("a1", pchls.Add)
	g.MustAddEdge(products[2], a1)
	g.MustAddEdge(products[3], a1)
	a2 := g.MustAddNode("a2", pchls.Add)
	g.MustAddEdge(a0, a2)
	g.MustAddEdge(a1, a2)
	y := g.MustAddNode("y", pchls.Output)
	g.MustAddEdge(a2, y)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	return g
}

const customLib = `
# A custom library: one three-function ALU, a mid-speed multiplier that
# splits the serial/parallel difference, and I/O units.
module ALU    +,-,>  95  1  2.4
module MulMid *     180  3  4.0
module in     imp    16  1  0.2
module out    xpt    16  1  1.7
`

func main() {
	g := buildFIR4()
	cons := pchls.Constraints{Deadline: 12, PowerMax: 10}

	table1 := pchls.Table1()
	custom, err := pchls.ParseLibrary(strings.NewReader(customLib))
	if err != nil {
		log.Fatal(err)
	}

	for _, lib := range []struct {
		name string
		l    *pchls.Library
	}{{"Table 1", table1}, {"custom", custom}} {
		d, err := pchls.SynthesizeBest(g, lib.l, cons, pchls.Config{})
		if err != nil {
			fmt.Printf("%-8s: infeasible under T=%d, P<=%g (%v)\n", lib.name, cons.Deadline, cons.PowerMax, err)
			continue
		}
		fmt.Printf("%-8s: area %7.1f, %d FUs, %d registers, peak %.2f, %d cycles\n",
			lib.name, d.Area(), len(d.FUs), len(d.Datapath.Registers),
			d.Schedule.PeakPower(), d.Schedule.Length())
		for i, fu := range d.FUs {
			ops := make([]string, len(fu.Ops))
			for j, op := range fu.Ops {
				ops[j] = d.Graph.Node(op).Name
			}
			fmt.Printf("           FU%d %-10s <- %s\n", i, fu.Module.Name, strings.Join(ops, " "))
		}
	}
	fmt.Println("\nUnder a tight power cap the 4-cycle-free MulMid (power 4.0) lets")
	fmt.Println("two multiplications overlap where Table 1 would have to serialize")
	fmt.Println("a parallel multiplier (8.1) or pay four cycles per serial multiply.")
}
