// Battery lifetime: reproduce the paper's Figure 1 motivation. The same
// computation is scheduled twice — classical ASAP (spiky power) and the
// power-constrained pasap (capped power). Both draw the same energy, but a
// real battery's usable charge depends on the current profile, so the
// capped schedule runs the workload more times before the battery dies.
//
// Run with: go run ./examples/battery_lifetime
package main

import (
	"fmt"
	"log"

	"pchls"
)

func main() {
	g := pchls.MustBenchmark("hal")
	lib := pchls.Table1()

	const cap = 12.0 // P<: per-cycle power cap of the desired schedule
	result, err := pchls.Figure1(g, lib, cap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(result.Report())

	// The same comparison on a custom battery: a small low-cost cell is
	// hurt far more by spikes than a large one.
	fmt.Println("\ncustom batteries (KiBaM, decreasing quality):")
	spiky := result.Unconstrained.Profile()
	capped := result.Constrained.Profile()
	energy := pchls.AnalyzeProfile(spiky).Energy
	for _, quality := range []struct {
		label string
		k     float64 // well-equalization rate: lower = worse chemistry
	}{{"good", 0.10}, {"mid", 0.05}, {"cheap", 0.02}} {
		battery, err := pchls.NewKiBaM(energy*50, 0.2, quality.k)
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := pchls.CompareLifetime(battery, spiky, capped, 1<<20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s battery: %3d vs %3d task periods (%+.1f%% lifetime)\n",
			quality.label, cmp.PeriodsA, cmp.PeriodsB, cmp.ExtensionPercent())
	}
	fmt.Println("\nLower-quality batteries benefit more from spike elimination,")
	fmt.Println("matching the paper's low-cost-battery motivation.")
}
