// Pipelined synthesis analysis: the paper's benchmarks are DSP loop
// bodies, so throughput matters as much as latency. This example folds the
// FIR filter loop: successive iterations start every II cycles, the power
// cap applies to the folded steady-state profile, and the functional-unit
// demand follows the modulo reservation table. Smaller II = higher
// throughput = more hardware and more sustained power.
//
// Run with: go run ./examples/pipelined
package main

import (
	"fmt"
	"log"

	"pchls"
)

func main() {
	g := pchls.MustBenchmark("fir16")
	lib := pchls.Table1()
	bind := pchls.UniformFastest(lib)
	const deadline = 24

	for _, powerCap := range []float64{40, 90} {
		minII, err := pchls.PipelineMinII(g, bind, powerCap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fir16 under P< = %g: energy bound gives II >= %d\n", powerCap, minII)

		results, err := pchls.PipelineExplore(g, bind, lib, 14, deadline, powerCap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4s %12s %12s %12s %14s\n", "II", "latency", "folded peak", "FU area", "throughput")
		for _, r := range results {
			fmt.Printf("%4d %12d %12.2f %12.1f %11.3f/cyc\n",
				r.II, r.Schedule.Length(), r.PeakPower(), r.FUArea, 1.0/float64(r.II))
		}
		fmt.Println()
	}
	fmt.Println("The power cap sets the throughput floor: P< = 40 admits nothing")
	fmt.Println("below II = 8, while P< = 90 pipelines down to II = 4 by keeping")
	fmt.Println("more multipliers busy in every folded cycle — note the FU area")
	fmt.Println("rising from 4436 at II = 14 to 4871 at II = 4 under the loose cap,")
	fmt.Println("while under the tight cap the cap itself, not the interval, binds.")
}
