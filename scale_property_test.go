package pchls

import (
	"bytes"
	"testing"

	"pchls/internal/gen"
)

// TestPartitionStitchDeterministicAcrossWorkers is the top-level
// decomposition property (DESIGN.md §13): above the auto thresholds
// (>=128 computation nodes, >=2 weakly-connected components) the default
// Config must take the partition path, and the stitched design must be
// byte-identical — serialized JSON — whether the regions are synthesized
// on 1, 2 or 8 workers, forced or auto-selected. The whole test runs
// under -race in the tier-1 suite, so it doubles as the data-race gate
// for the region runner pool. Every stitched result must also pass the
// independent validator.
func TestPartitionStitchDeterministicAcrossWorkers(t *testing.T) {
	cfg, err := gen.PresetConfig(gen.PresetBlocks, 160)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		inst := gen.NewInstance(seed, gen.InstanceConfig{Graph: cfg})
		asap, err := ASAP(inst.Graph, UniformFastest(inst.Library))
		if err != nil {
			t.Fatal(err)
		}
		cons := Constraints{
			Deadline: asap.Length() + asap.Length()/2,
			PowerMax: asap.PeakPower() * 0.7,
		}

		ref, err := Synthesize(inst.Graph, inst.Library, cons, Config{})
		if err != nil {
			// The derived point is feasible for every published seed; a
			// future generator change may shift that, so loosen rather
			// than fail spuriously.
			cons.PowerMax = 0
			if ref, err = Synthesize(inst.Graph, inst.Library, cons, Config{}); err != nil {
				t.Fatalf("seed %d: unconstrained synthesis failed: %v", seed, err)
			}
		}
		if ref.Stats.Regions == 0 && ref.Stats.PartitionFallbacks == 0 {
			t.Fatalf("seed %d: auto config never took the partition path on a %d-node blocks graph",
				seed, inst.Graph.N())
		}
		if err := Verify(ref); err != nil {
			t.Fatalf("seed %d: auto design fails validation: %v", seed, err)
		}
		refJSON, err := ref.JSON()
		if err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 2, 8} {
			d, err := Synthesize(inst.Graph, inst.Library, cons, Config{
				Partition: PartitionForce, Workers: workers,
			})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if err := Verify(d); err != nil {
				t.Fatalf("seed %d workers %d: stitched design fails validation: %v", seed, workers, err)
			}
			j, err := d.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j, refJSON) {
				t.Fatalf("seed %d: forced partition on %d workers diverges from the auto result", seed, workers)
			}
		}
	}
}
